(* MILP construction: the §III model, its options, and decode. *)

open Etransform

let solve ?(options = Lp_builder.default_options) asis =
  let built = Lp_builder.build ~options asis in
  let r = Lp.Milp.solve built.Lp_builder.model in
  (built, r)

let test_model_dimensions () =
  let asis = Fixtures.asis () in
  let built = Lp_builder.build asis in
  let m = built.Lp_builder.model in
  (* 4 groups x 3 targets assignment binaries; 4 assignment + 3 capacity rows. *)
  Alcotest.(check int) "vars" 12 (Lp.Model.num_vars m);
  Alcotest.(check int) "rows" 7 (Lp.Model.num_constrs m)

let test_solves_to_optimal_assignment () =
  let asis = Fixtures.asis () in
  let built, r = solve asis in
  Alcotest.(check string) "optimal" "optimal" (Lp.Status.to_string r.Lp.Milp.status);
  let p = Lp_builder.decode built r.Lp.Milp.x in
  Alcotest.(check (list string)) "feasible" [] (Placement.validate asis p);
  (* Exhaustive check over all 3^4 assignments with the linear objective. *)
  let best = ref infinity in
  let assign = Array.make 4 0 in
  let rec enum i =
    if i = 4 then begin
      let p = Placement.non_dr (Array.copy assign) in
      if Placement.validate asis p = [] then begin
        let c =
          Array.to_list assign
          |> List.mapi (fun g j ->
                 Cost_model.assign_cost asis ~group:g asis.Asis.targets.(j))
          |> List.fold_left ( +. ) 0.0
        in
        if c < !best then best := c
      end
    end
    else
      for j = 0 to 2 do
        assign.(i) <- j;
        enum (i + 1)
      done
  in
  enum 0;
  Alcotest.(check (float 1e-6)) "matches brute force" !best r.Lp.Milp.obj

let test_pins () =
  let asis = Fixtures.asis () in
  let options = { Lp_builder.default_options with Lp_builder.pins = [ (0, 2) ] } in
  let built, r = solve ~options asis in
  let p = Lp_builder.decode built r.Lp.Milp.x in
  Alcotest.(check int) "group 0 pinned to C" 2 p.Placement.primary.(0)

let test_forbids () =
  let asis = Fixtures.asis () in
  let options =
    { Lp_builder.default_options with
      Lp_builder.forbids = [ (0, 0); (0, 2) ] }
  in
  let built, r = solve ~options asis in
  let p = Lp_builder.decode built r.Lp.Milp.x in
  Alcotest.(check int) "group 0 forced to B" 1 p.Placement.primary.(0)

let test_omega_spreads () =
  let asis = Fixtures.asis () in
  (* At most half the groups per site -> at least two sites. *)
  let options = { Lp_builder.default_options with Lp_builder.omega = Some 0.5 } in
  let built, r = solve ~options asis in
  let p = Lp_builder.decode built r.Lp.Milp.x in
  let used =
    Array.to_list p.Placement.primary |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "at least two sites" true (used >= 2);
  let counts = Array.make 3 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1) p.Placement.primary;
  Array.iter
    (fun c -> Alcotest.(check bool) "omega respected" true (c <= 2))
    counts

let test_capacity_binds () =
  let asis = Fixtures.asis () in
  let built, r = solve asis in
  let p = Lp_builder.decode built r.Lp.Milp.x in
  let loads = Placement.servers_per_dc asis p in
  Array.iteri
    (fun j l ->
      Alcotest.(check bool) "capacity" true
        (l <= asis.Asis.targets.(j).Data_center.capacity))
    loads

let test_shared_risk_rows () =
  let asis = Fixtures.asis () in
  let g0 = { (Fixtures.group_0 ()) with App_group.colocate_avoid = [ 3 ] } in
  let groups = Array.copy asis.Asis.groups in
  groups.(0) <- g0;
  let asis = { asis with Asis.groups = groups } in
  let built, r = solve asis in
  let p = Lp_builder.decode built r.Lp.Milp.x in
  Alcotest.(check bool) "groups separated" true
    (p.Placement.primary.(0) <> p.Placement.primary.(3))

let test_eos_objective_matches_curve () =
  (* With volume discounts, the MILP objective must equal the evaluator's
     exact space cost, not the first-tier approximation. *)
  let discounted_dc =
    Data_center.v ~name:"D" ~capacity:12
      ~space_segments:
        [ { Lp.Piecewise.width = 6.0; unit_cost = 100.0 };
          { Lp.Piecewise.width = 8.0; unit_cost = 50.0 } ]
      ~wan_per_mb:0.0 ~power_per_kwh:0.0 ~admin_monthly:0.0
      ~user_latency_ms:[| 1.0; 1.0 |] ()
  in
  let asis =
    Asis.v ~params:Fixtures.params ~name:"eos"
      ~groups:[| Fixtures.group_2 (); Fixtures.group_3 () |]
      ~targets:[| discounted_dc |]
      ~user_locations:[| "a"; "b" |]
      ~current:[| Fixtures.target_a () |]
      ~current_placement:[| 0; 0 |] ()
  in
  let options =
    { Lp_builder.default_options with Lp_builder.economies_of_scale = true }
  in
  let _, r = solve ~options asis in
  (* 7 servers: 6 @100 + 1 @50 = 650 space; no other costs are zero... power
     0.1kW*100h*0 = 0, labor 0, wan 0. *)
  Alcotest.(check (float 1e-6)) "discount priced exactly" 650.0 r.Lp.Milp.obj

let test_candidate_limit_keeps_feasibility () =
  let asis = Fixtures.synthetic ~seed:5 ~groups:20 ~targets:5 () in
  let options =
    { Lp_builder.default_options with Lp_builder.candidate_limit = Some 3 }
  in
  let built, r = solve ~options asis in
  Alcotest.(check bool) "still solvable" true (Array.length r.Lp.Milp.x > 0);
  let p = Lp_builder.decode built r.Lp.Milp.x in
  Alcotest.(check (list string)) "feasible" [] (Placement.validate asis p)

let test_pin_on_forbidden_rejected () =
  let asis = Fixtures.asis () in
  let options =
    { Lp_builder.default_options with
      Lp_builder.pins = [ (0, 1) ];
      forbids = [ (0, 1) ] }
  in
  Alcotest.check_raises "conflicting pin"
    (Invalid_argument "Lp_builder.build: pin targets a forbidden pair")
    (fun () -> ignore (Lp_builder.build ~options asis))

let test_lp_file_export () =
  let asis = Fixtures.asis () in
  let built = Lp_builder.build asis in
  let text = Lp.Lp_format.model_to_string built.Lp_builder.model in
  Alcotest.(check bool) "has assignment rows" true
    (Astring_contains.contains text "assign_0");
  Alcotest.(check bool) "has capacity rows" true
    (Astring_contains.contains text "cap_0");
  (* The exported file round-trips through the parser to the same optimum. *)
  let m' = Lp.Lp_parse.model_of_string text in
  let r = Lp.Milp.solve built.Lp_builder.model and r' = Lp.Milp.solve m' in
  Alcotest.(check (float 1e-6)) "same optimum" r.Lp.Milp.obj r'.Lp.Milp.obj

(* On random small instances the MILP optimum must match brute force over
   all assignments (linear objective, no EoS). *)
let prop_matches_brute_force =
  QCheck2.Test.make ~name:"builder MILP matches brute force" ~count:20
    QCheck2.Gen.(int_range 0 2000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed ~groups:6 ~targets:3 () in
      let built, r = solve asis in
      if r.Lp.Milp.status <> Lp.Status.Optimal then
        QCheck2.Test.fail_reportf "status %s" (Lp.Status.to_string r.Lp.Milp.status);
      let m = Asis.num_groups asis and n = Asis.num_targets asis in
      let best = ref infinity in
      let assign = Array.make m 0 in
      let rec enum i =
        if i = m then begin
          let p = Placement.non_dr (Array.copy assign) in
          if Placement.validate asis p = [] then begin
            let c = ref 0.0 in
            Array.iteri
              (fun g j ->
                c := !c +. Cost_model.assign_cost asis ~group:g asis.Asis.targets.(j))
              assign;
            if !c < !best then best := !c
          end
        end
        else
          for j = 0 to n - 1 do
            assign.(i) <- j;
            enum (i + 1)
          done
      in
      enum 0;
      if Float.abs (r.Lp.Milp.obj -. !best) > 1e-5 *. (1.0 +. Float.abs !best)
      then QCheck2.Test.fail_reportf "milp %g vs brute %g" r.Lp.Milp.obj !best;
      ignore built;
      true)

let suite =
  [
    Alcotest.test_case "model dimensions" `Quick test_model_dimensions;
    Alcotest.test_case "optimal vs exhaustive" `Quick test_solves_to_optimal_assignment;
    Alcotest.test_case "pins" `Quick test_pins;
    Alcotest.test_case "forbids" `Quick test_forbids;
    Alcotest.test_case "business-impact omega" `Quick test_omega_spreads;
    Alcotest.test_case "capacity rows" `Quick test_capacity_binds;
    Alcotest.test_case "shared-risk rows" `Quick test_shared_risk_rows;
    Alcotest.test_case "economies of scale priced exactly" `Quick test_eos_objective_matches_curve;
    Alcotest.test_case "candidate pruning" `Quick test_candidate_limit_keeps_feasibility;
    Alcotest.test_case "pin/forbid conflict" `Quick test_pin_on_forbidden_rejected;
    Alcotest.test_case "LP file export" `Quick test_lp_file_export;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
  ]
