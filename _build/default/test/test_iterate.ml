(* The iterative-modification interface (paper Fig. 5). *)

open Etransform

let test_pin_changes_plan () =
  let asis = Fixtures.asis () in
  let base = Iterate.replan asis [] in
  let pinned_target =
    (* Pin group 0 somewhere it would not otherwise go. *)
    if base.Solver.placement.Placement.primary.(0) = 2 then 0 else 2
  in
  let adjusted = Iterate.replan asis [ Iterate.Pin (0, pinned_target) ] in
  Alcotest.(check int) "pin honoured" pinned_target
    adjusted.Solver.placement.Placement.primary.(0)

let test_close_dc () =
  let asis = Fixtures.asis () in
  let o = Iterate.replan asis [ Iterate.Close_dc 0 ] in
  Array.iter
    (fun j -> Alcotest.(check bool) "site closed" true (j <> 0))
    o.Solver.placement.Placement.primary

let test_spread () =
  let asis = Fixtures.asis () in
  let o = Iterate.replan asis [ Iterate.Spread 0.5 ] in
  let counts = Array.make 3 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1)
    o.Solver.placement.Placement.primary;
  Array.iter
    (fun c -> Alcotest.(check bool) "spread enforced" true (c <= 2))
    counts

let test_adjustments_compose () =
  let asis = Fixtures.asis () in
  let o =
    Iterate.replan asis [ Iterate.Close_dc 0; Iterate.Forbid (1, 1) ]
  in
  Array.iteri
    (fun i j ->
      Alcotest.(check bool) "no site 0" true (j <> 0);
      if i = 1 then Alcotest.(check bool) "group 1 not at B" true (j <> 1))
    o.Solver.placement.Placement.primary

let test_cost_never_improves_with_constraints () =
  let asis = Fixtures.asis () in
  let base = Iterate.replan asis [] in
  let constrained = Iterate.replan asis [ Iterate.Close_dc 0 ] in
  Alcotest.(check bool) "constraints cannot reduce optimal cost" true
    (Evaluate.total constrained.Solver.summary.Evaluate.cost
    >= Evaluate.total base.Solver.summary.Evaluate.cost -. 1e-6)

let test_bad_adjustments_rejected () =
  let asis = Fixtures.asis () in
  Alcotest.(check bool) "unknown group" true
    (try ignore (Iterate.replan asis [ Iterate.Pin (99, 0) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown target" true
    (try ignore (Iterate.replan asis [ Iterate.Close_dc 99 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad spread" true
    (try ignore (Iterate.replan asis [ Iterate.Spread 1.5 ]); false
     with Invalid_argument _ -> true)

let test_pp_adjustment () =
  Alcotest.(check string) "pin" "pin group 1 to target 2"
    (Fmt.str "%a" Iterate.pp_adjustment (Iterate.Pin (1, 2)));
  Alcotest.(check string) "spread" "at most 50% of groups per site"
    (Fmt.str "%a" Iterate.pp_adjustment (Iterate.Spread 0.5))

let suite =
  [
    Alcotest.test_case "pin changes plan" `Quick test_pin_changes_plan;
    Alcotest.test_case "close a site" `Quick test_close_dc;
    Alcotest.test_case "spread constraint" `Quick test_spread;
    Alcotest.test_case "adjustments compose" `Quick test_adjustments_compose;
    Alcotest.test_case "constraints cost monotone" `Quick test_cost_never_improves_with_constraints;
    Alcotest.test_case "invalid adjustments rejected" `Quick test_bad_adjustments_rejected;
    Alcotest.test_case "adjustment printing" `Quick test_pp_adjustment;
  ]
