open Lp

let test_singleton_tightening () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:100.0 "x" in
  let y = Model.add_var m ~hi:100.0 "y" in
  Model.add_le m "c1" (Model.Linexpr.term 2.0 x) 10.0;
  Model.add_ge m "c2" (Model.Linexpr.var y) 3.0;
  Model.add_le m "c3" Model.Linexpr.(add (var x) (var y)) 50.0;
  let changed = Presolve.tighten m in
  Alcotest.(check bool) "some bounds changed" true (changed >= 2);
  Alcotest.(check (float 1e-9)) "x hi" 5.0 (Model.vars m).(0).Model.hi;
  Alcotest.(check (float 1e-9)) "y lo" 3.0 (Model.vars m).(1).Model.lo

let test_negative_coefficient_singleton () =
  let m = Model.create () in
  let x = Model.add_var m ~lo:(-50.0) ~hi:50.0 "x" in
  (* -2x <= 10  <=>  x >= -5 *)
  Model.add_le m "c" (Model.Linexpr.term (-2.0) x) 10.0;
  ignore (Presolve.tighten m);
  Alcotest.(check (float 1e-9)) "x lo" (-5.0) (Model.vars m).(0).Model.lo

let test_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~lo:0.3 ~hi:4.7 "x" in
  ignore (Presolve.tighten m);
  Alcotest.(check (float 1e-9)) "lo rounded" 1.0 (Model.vars m).(0).Model.lo;
  Alcotest.(check (float 1e-9)) "hi rounded" 4.0 (Model.vars m).(0).Model.hi;
  ignore x

let test_diagnose_empty_domain () =
  let m = Model.create () in
  let _ = Model.add_var m ~integer:true ~lo:0.4 ~hi:0.6 "x" in
  let issues = Presolve.diagnose m in
  Alcotest.(check bool) "reports empty integral domain" true
    (List.exists
       (fun s -> Astring_contains.contains s "empty integral domain")
       issues)

let test_validate_bad_bounds () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.set_bounds m x ~lo:2.0 ~hi:1.0;
  Alcotest.(check bool) "bound order flagged" true (Model.validate m <> [])

let test_tighten_preserves_optimum () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:100.0 "x" and y = Model.add_var m ~hi:100.0 "y" in
  Model.add_le m "c1" (Model.Linexpr.term 2.0 x) 10.0;
  Model.add_le m "c2" Model.Linexpr.(add (var x) (var y)) 8.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (term 3.0 x) (var y));
  let before = (Milp.solve m).Milp.obj in
  ignore (Presolve.tighten m);
  let after = (Milp.solve m).Milp.obj in
  Alcotest.(check (float 1e-6)) "optimum unchanged" before after

let suite =
  [
    Alcotest.test_case "singleton rows tighten bounds" `Quick test_singleton_tightening;
    Alcotest.test_case "negative coefficient" `Quick test_negative_coefficient_singleton;
    Alcotest.test_case "integer bound rounding" `Quick test_integer_rounding;
    Alcotest.test_case "diagnose empty domain" `Quick test_diagnose_empty_domain;
    Alcotest.test_case "validate crossed bounds" `Quick test_validate_bad_bounds;
    Alcotest.test_case "tighten preserves optimum" `Quick test_tighten_preserves_optimum;
  ]
