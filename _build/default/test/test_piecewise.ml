(* Step-function (economies-of-scale) encodings: the Schoomer technique the
   paper uses for volume discounts. *)

open Lp

let segs widths costs =
  List.map2
    (fun width unit_cost -> { Piecewise.width; unit_cost })
    widths costs

let test_cost_at () =
  let s = segs [ 10.0; 10.0; 10.0 ] [ 5.0; 4.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Piecewise.cost_at s 0.0);
  Alcotest.(check (float 1e-9)) "inside first" 25.0 (Piecewise.cost_at s 5.0);
  Alcotest.(check (float 1e-9)) "boundary" 50.0 (Piecewise.cost_at s 10.0);
  Alcotest.(check (float 1e-9)) "second tier" 70.0 (Piecewise.cost_at s 15.0);
  Alcotest.(check (float 1e-9)) "full" 120.0 (Piecewise.cost_at s 30.0);
  Alcotest.(check (float 1e-9)) "overflow clamps" 120.0 (Piecewise.cost_at s 99.0);
  Alcotest.(check (float 1e-9)) "width" 30.0 (Piecewise.total_width s)

(* The concave encoding must pay full price for early units even though
   later units are cheaper — an LP without the binaries would cheat. *)
let test_concave_no_cheating () =
  let m = Model.create () in
  let q = Model.add_var m ~lo:15.0 ~hi:15.0 "q" in
  let cost =
    Piecewise.concave_cost m ~name:"space" ~quantity:(Model.Linexpr.var q)
      (segs [ 10.0; 10.0; 10.0 ] [ 5.0; 4.0; 3.0 ])
  in
  Model.set_objective m cost;
  let r = Milp.solve m in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Milp.status);
  Alcotest.(check (float 1e-6)) "pays tier order" 70.0 r.Milp.obj

let test_concave_lp_relaxation_cheats () =
  (* Sanity check that the binaries are doing real work: the LP relaxation
     of the same model is strictly cheaper. *)
  let m = Model.create () in
  let q = Model.add_var m ~lo:15.0 ~hi:15.0 "q" in
  let cost =
    Piecewise.concave_cost m ~name:"space" ~quantity:(Model.Linexpr.var q)
      (segs [ 10.0; 10.0; 10.0 ] [ 5.0; 4.0; 3.0 ])
  in
  Model.set_objective m cost;
  let r = Milp.relax m in
  Alcotest.(check bool) "relaxation cheaper" true (r.Simplex.obj_value < 70.0 -. 1e-6)

let test_convex () =
  let m = Model.create () in
  let q = Model.add_var m ~lo:15.0 ~hi:15.0 "q" in
  let cost =
    Piecewise.convex_cost m ~name:"wan" ~quantity:(Model.Linexpr.var q)
      (segs [ 10.0; 10.0; 10.0 ] [ 3.0; 4.0; 5.0 ])
  in
  Model.set_objective m cost;
  (* increasing prices: plain LP suffices and fills cheap tiers first *)
  let r = Milp.solve m in
  Alcotest.(check (float 1e-6)) "convex cost" 50.0 r.Milp.obj

let test_fixed_charge () =
  (* Two facilities, one with a big opening fee: optimizer should avoid it
     when a single facility suffices. *)
  let m = Model.create () in
  let q1 = Model.add_var m ~hi:10.0 "q1" and q2 = Model.add_var m ~hi:10.0 "q2" in
  Model.add_ge m "demand" Model.Linexpr.(add (var q1) (var q2)) 8.0;
  let f1, _ =
    Piecewise.fixed_charge m ~name:"dc1" ~quantity:(Model.Linexpr.var q1)
      ~capacity:10.0 ~fixed_cost:100.0
  in
  let f2, _ =
    Piecewise.fixed_charge m ~name:"dc2" ~quantity:(Model.Linexpr.var q2)
      ~capacity:10.0 ~fixed_cost:1.0
  in
  Model.set_objective m
    Model.Linexpr.(sum [ f1; f2; term 0.1 q1; term 0.1 q2 ]);
  let r = Milp.solve m in
  Alcotest.(check (float 1e-6)) "only cheap one opens" 1.8 r.Milp.obj

let test_invalid_segments () =
  let m = Model.create () in
  let q = Model.add_var m "q" in
  Alcotest.check_raises "empty"
    (Invalid_argument "s: empty segment list") (fun () ->
      ignore (Piecewise.concave_cost m ~name:"s" ~quantity:(Model.Linexpr.var q) []));
  Alcotest.check_raises "bad width"
    (Invalid_argument "s: non-positive segment width") (fun () ->
      ignore
        (Piecewise.concave_cost m ~name:"s" ~quantity:(Model.Linexpr.var q)
           [ { Piecewise.width = 0.0; unit_cost = 1.0 } ]))

(* For any demand within total width, the MILP cost of the concave encoding
   must equal direct evaluation of the step curve. *)
let prop_concave_matches_direct =
  let gen =
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* widths = list_repeat k (int_range 2 10) in
      let* c0 = int_range 5 12 in
      let* drops = list_repeat k (int_range 0 3) in
      let* q = float_bound_inclusive 1.0 in
      return (widths, c0, drops, q))
  in
  QCheck2.Test.make ~name:"concave encoding equals direct curve" ~count:60 gen
    (fun (widths, c0, drops, qfrac) ->
      let costs =
        List.rev
          (snd
             (List.fold_left
                (fun (c, acc) d -> (max 1 (c - d), (float_of_int c) :: acc))
                (c0, []) drops))
      in
      let s = segs (List.map float_of_int widths) costs in
      let total = Piecewise.total_width s in
      let q = qfrac *. total in
      let m = Model.create () in
      let qv = Model.add_var m ~lo:q ~hi:q "q" in
      let cost = Piecewise.concave_cost m ~name:"c" ~quantity:(Model.Linexpr.var qv) s in
      Model.set_objective m cost;
      let r = Milp.solve m in
      if r.Milp.status <> Status.Optimal then
        QCheck2.Test.fail_reportf "status %s" (Status.to_string r.Milp.status);
      let direct = Piecewise.cost_at s q in
      if Float.abs (r.Milp.obj -. direct) > 1e-5 *. (1.0 +. direct) then
        QCheck2.Test.fail_reportf "milp %g direct %g (q=%g)" r.Milp.obj direct q;
      true)

let suite =
  [
    Alcotest.test_case "direct curve evaluation" `Quick test_cost_at;
    Alcotest.test_case "concave encoding honest" `Quick test_concave_no_cheating;
    Alcotest.test_case "LP relaxation would cheat" `Quick test_concave_lp_relaxation_cheats;
    Alcotest.test_case "convex encoding" `Quick test_convex;
    Alcotest.test_case "fixed charge" `Quick test_fixed_charge;
    Alcotest.test_case "invalid segments" `Quick test_invalid_segments;
    QCheck_alcotest.to_alcotest prop_concave_matches_direct;
  ]
