(* Report formatting and the Fig. 5 pipeline artifacts. *)

open Etransform

let test_table_alignment () =
  let t =
    Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim t) in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (Astring_contains.contains t "---")

let test_money () =
  Alcotest.(check string) "small" "$12.00" (Report.money 12.0);
  Alcotest.(check string) "thousands" "$54321" (Report.money 54321.0);
  Alcotest.(check bool) "scientific for big" true
    (Astring_contains.contains (Report.money 3.3e8) "e+08")

let test_percent () =
  Alcotest.(check string) "reduction" "-43%" (Report.percent ~relative_to:100.0 57.0);
  Alcotest.(check string) "increase" "+37%" (Report.percent ~relative_to:100.0 137.0);
  Alcotest.(check string) "degenerate" "n/a" (Report.percent ~relative_to:0.0 5.0)

let test_comparison_rows () =
  let asis = Fixtures.asis () in
  let s = Evaluate.plan asis (Placement.non_dr [| 0; 1; 2; 0 |]) in
  let rows = Report.comparison_rows ~asis_total:10_000.0 [ ("ETRANSFORM", s) ] in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check int) "all columns" (List.length Report.comparison_header)
    (List.length row);
  Alcotest.(check string) "name first" "ETRANSFORM" (List.hd row)

let test_pipeline_artifacts () =
  let asis = Fixtures.asis () in
  let dir = Filename.temp_file "etransform" "" in
  Sys.remove dir;
  let artifacts = Pipeline.run ~workdir:dir asis in
  (match artifacts.Pipeline.lp_file with
  | None -> Alcotest.fail "expected LP file"
  | Some path ->
      Alcotest.(check bool) "LP file exists" true (Sys.file_exists path);
      (* The exported LP file parses back. *)
      let m = Lp.Lp_parse.read_model_file path in
      Alcotest.(check bool) "parses" true (Lp.Model.num_vars m > 0));
  (match artifacts.Pipeline.solution_file with
  | None -> Alcotest.fail "expected solution file"
  | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "mentions to-be state" true
        (Astring_contains.contains text "total_monthly_cost"));
  Alcotest.(check (list string)) "outcome feasible" []
    (Placement.validate asis artifacts.Pipeline.outcome.Solver.placement)

let test_pipeline_no_workdir () =
  let asis = Fixtures.asis () in
  let artifacts = Pipeline.run asis in
  Alcotest.(check bool) "no files" true
    (artifacts.Pipeline.lp_file = None && artifacts.Pipeline.solution_file = None)

let test_pipeline_dr () =
  let asis = Fixtures.synthetic ~seed:41 ~groups:10 ~targets:3 () in
  let artifacts = Pipeline.run ~dr:true asis in
  Alcotest.(check bool) "secondaries set" true
    (artifacts.Pipeline.outcome.Solver.placement.Placement.secondary <> None)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "money formatting" `Quick test_money;
    Alcotest.test_case "percent formatting" `Quick test_percent;
    Alcotest.test_case "comparison rows" `Quick test_comparison_rows;
    Alcotest.test_case "pipeline artifacts" `Quick test_pipeline_artifacts;
    Alcotest.test_case "pipeline without workdir" `Quick test_pipeline_no_workdir;
    Alcotest.test_case "pipeline with DR" `Quick test_pipeline_dr;
  ]
