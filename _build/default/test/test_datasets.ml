(* Dataset substrate: determinism, distribution invariants, and the Table II
   shape of the three case-study estates. *)

let test_prng_deterministic () =
  let a = Datasets.Prng.create 7 and b = Datasets.Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Datasets.Prng.next_int64 a)
      (Datasets.Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let parent = Datasets.Prng.create 7 in
  let child = Datasets.Prng.split parent in
  let next_parent = Datasets.Prng.next_int64 parent in
  (* Re-create and re-split: drawing from the child must not change what
     the parent produces next. *)
  let parent2 = Datasets.Prng.create 7 in
  let child2 = Datasets.Prng.split parent2 in
  for _ = 1 to 50 do
    ignore (Datasets.Prng.next_int64 child2)
  done;
  Alcotest.(check int64) "parent unaffected by child draws" next_parent
    (Datasets.Prng.next_int64 parent2);
  ignore child

let test_prng_float_range () =
  let rng = Datasets.Prng.create 11 in
  for _ = 1 to 1000 do
    let f = Datasets.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_int_bounds () =
  let rng = Datasets.Prng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let k = Datasets.Prng.int rng 5 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 5);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_zipf_weights () =
  let w = Datasets.Distributions.zipf_weights ~n:10 ~s:1.0 in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Array.fold_left ( +. ) 0.0 w);
  for k = 1 to 9 do
    Alcotest.(check bool) "decreasing" true (w.(k) <= w.(k - 1))
  done

let test_partition_integer () =
  let rng = Datasets.Prng.create 5 in
  let w = Datasets.Distributions.zipf_weights ~n:20 ~s:1.1 in
  let parts = Datasets.Distributions.partition_integer rng ~total:1070 ~weights:w ~min_each:1 in
  Alcotest.(check int) "sums to total" 1070 (Array.fold_left ( + ) 0 parts);
  Array.iter (fun p -> Alcotest.(check bool) "min respected" true (p >= 1)) parts

let test_partition_too_small () =
  let rng = Datasets.Prng.create 5 in
  Alcotest.check_raises "total too small"
    (Invalid_argument "Distributions.partition_integer: total too small")
    (fun () ->
      ignore
        (Datasets.Distributions.partition_integer rng ~total:3
           ~weights:[| 1.0; 1.0; 1.0; 1.0 |] ~min_each:1))

let test_categorical () =
  let rng = Datasets.Prng.create 17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let k = Datasets.Distributions.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "heavy class dominates" true (counts.(2) > counts.(0));
  Alcotest.(check bool) "mid class in between" true (counts.(1) > counts.(0))

let test_reference_costs_sane () =
  let check_market (m : Datasets.Reference_costs.market) =
    Alcotest.(check bool) (m.Datasets.Reference_costs.market ^ " power") true
      (m.Datasets.Reference_costs.power_per_kwh > 0.03
      && m.Datasets.Reference_costs.power_per_kwh < 0.5);
    Alcotest.(check bool) (m.Datasets.Reference_costs.market ^ " space") true
      (m.Datasets.Reference_costs.space_per_server > 50.0
      && m.Datasets.Reference_costs.space_per_server < 1000.0)
  in
  Array.iter check_market Datasets.Reference_costs.us_markets;
  Array.iter check_market Datasets.Reference_costs.world_markets;
  Alcotest.(check bool) "find works" true
    (Datasets.Reference_costs.find "Texas" <> None)

let test_volume_segments () =
  let segs = Datasets.Reference_costs.volume_segments ~capacity:300 ~per_server:100.0 in
  Alcotest.(check int) "three tiers" 3 (List.length segs);
  Alcotest.(check bool) "covers capacity" true
    (Lp.Piecewise.total_width segs >= 300.0);
  (* Tiers must be non-increasing in unit cost (volume discount). *)
  let costs = List.map (fun s -> s.Lp.Piecewise.unit_cost) segs in
  Alcotest.(check bool) "discounted" true (List.sort compare costs = List.rev costs
                                           || costs = List.sort (fun a b -> compare b a) costs)

let test_synth_deterministic () =
  let a = Datasets.Synth.generate Datasets.Synth.default in
  let b = Datasets.Synth.generate Datasets.Synth.default in
  Alcotest.(check int) "groups" (Etransform.Asis.num_groups a) (Etransform.Asis.num_groups b);
  Alcotest.(check int) "servers" (Etransform.Asis.total_servers a)
    (Etransform.Asis.total_servers b);
  Array.iteri
    (fun i (g : Etransform.App_group.t) ->
      let g' = b.Etransform.Asis.groups.(i) in
      Alcotest.(check string) "name" g.Etransform.App_group.name g'.Etransform.App_group.name;
      Alcotest.(check int) "size" g.Etransform.App_group.servers g'.Etransform.App_group.servers;
      Alcotest.(check (float 1e-9)) "traffic" g.Etransform.App_group.data_mb_month
        g'.Etransform.App_group.data_mb_month)
    a.Etransform.Asis.groups

let check_table2 name asis ~groups ~servers ~current ~targets =
  (* The synthesizer may split oversized Zipf-head groups, so group counts
     can exceed the nominal figure slightly. *)
  Alcotest.(check bool)
    (name ^ " groups") true
    (Etransform.Asis.num_groups asis >= groups
    && float_of_int (Etransform.Asis.num_groups asis)
       <= 1.06 *. float_of_int groups);
  Alcotest.(check int) (name ^ " servers") servers (Etransform.Asis.total_servers asis);
  Alcotest.(check int) (name ^ " current") current
    (Array.length asis.Etransform.Asis.current);
  Alcotest.(check int) (name ^ " targets") targets (Etransform.Asis.num_targets asis);
  Alcotest.(check (list string)) (name ^ " validates") [] (Etransform.Asis.validate asis)

let test_enterprise1_shape () =
  check_table2 "enterprise1" (Datasets.Enterprise1.asis ()) ~groups:190
    ~servers:1070 ~current:67 ~targets:10

let test_florida_shape () =
  check_table2 "florida" (Datasets.Florida.asis ()) ~groups:190 ~servers:3907
    ~current:43 ~targets:10

let test_federal_shape () =
  check_table2 "federal" (Datasets.Federal.asis ()) ~groups:1900 ~servers:42800
    ~current:2094 ~targets:100

let test_scaling () =
  let asis = Datasets.Federal.asis ~scale:0.1 () in
  Alcotest.(check bool) "groups scaled" true
    (Etransform.Asis.num_groups asis >= 190 && Etransform.Asis.num_groups asis < 240);
  Alcotest.(check int) "targets scaled" 10 (Etransform.Asis.num_targets asis);
  Alcotest.(check (list string)) "validates" [] (Etransform.Asis.validate asis)

let test_groups_fit_targets () =
  let asis = Datasets.Federal.asis ~scale:0.2 () in
  Alcotest.(check (list int)) "no oversized groups" []
    (Etransform.Split.oversized asis)

let prop_synth_valid_across_seeds =
  QCheck2.Test.make ~name:"synth output validates for any seed" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let cfg = { Datasets.Synth.default with Datasets.Synth.seed } in
      let asis = Datasets.Synth.generate cfg in
      Etransform.Asis.validate asis = [])

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
    Alcotest.test_case "integer partition" `Quick test_partition_integer;
    Alcotest.test_case "partition too small" `Quick test_partition_too_small;
    Alcotest.test_case "categorical sampling" `Quick test_categorical;
    Alcotest.test_case "reference costs sane" `Quick test_reference_costs_sane;
    Alcotest.test_case "volume discount segments" `Quick test_volume_segments;
    Alcotest.test_case "synth determinism" `Quick test_synth_deterministic;
    Alcotest.test_case "enterprise1 matches Table II" `Quick test_enterprise1_shape;
    Alcotest.test_case "florida matches Table II" `Quick test_florida_shape;
    Alcotest.test_case "federal matches Table II" `Slow test_federal_shape;
    Alcotest.test_case "scaling" `Quick test_scaling;
    Alcotest.test_case "split preprocessing applied" `Quick test_groups_fit_targets;
    QCheck_alcotest.to_alcotest prop_synth_valid_across_seeds;
  ]
