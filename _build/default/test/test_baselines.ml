(* The manual and greedy baselines (paper §VI-B/C). *)

open Etransform

let test_greedy_feasible () =
  let asis = Fixtures.asis () in
  let p = Greedy.plan asis in
  Alcotest.(check (list string)) "valid plan" [] (Placement.validate asis p)

let test_greedy_respects_capacity () =
  let asis = Fixtures.synthetic ~seed:7 ~groups:30 ~targets:4 () in
  let p = Greedy.plan asis in
  let loads = Placement.servers_per_dc asis p in
  Array.iteri
    (fun j load ->
      Alcotest.(check bool) "within capacity" true
        (load <= asis.Asis.targets.(j).Data_center.capacity))
    loads

let test_greedy_prefers_cheap () =
  (* With identical latency everywhere, greedy must land everything in the
     strictly cheapest data center when it fits. *)
  let flat = [| 10.0; 10.0 |] in
  let dc name space =
    Data_center.v ~name ~capacity:50
      ~space_segments:(Data_center.flat_space ~capacity:50 ~per_server:space)
      ~wan_per_mb:0.0 ~power_per_kwh:0.0 ~admin_monthly:0.0
      ~user_latency_ms:flat ()
  in
  let asis =
    Asis.v ~params:Fixtures.params ~name:"cheap"
      ~groups:[| Fixtures.group_2 (); Fixtures.group_3 () |]
      ~targets:[| dc "pricey" 500.0; dc "cheap" 50.0 |]
      ~user_locations:[| "a"; "b" |]
      ~current:[| dc "cur" 100.0 |]
      ~current_placement:[| 0; 0 |] ()
  in
  let p = Greedy.plan asis in
  Alcotest.(check (array int)) "all in cheap DC" [| 1; 1 |] p.Placement.primary

let test_greedy_order_largest_first () =
  (* A big group must grab the scarce cheap capacity before small ones. *)
  let flat = [| 10.0 |] in
  let dc name cap space =
    Data_center.v ~name ~capacity:cap
      ~space_segments:(Data_center.flat_space ~capacity:cap ~per_server:space)
      ~wan_per_mb:0.0 ~power_per_kwh:0.0 ~admin_monthly:0.0
      ~user_latency_ms:flat ()
  in
  let g name servers =
    App_group.v ~name ~servers ~data_mb_month:0.0 ~users:[| 1.0 |] ()
  in
  let asis =
    Asis.v ~params:Fixtures.params ~name:"order"
      ~groups:[| g "small" 2; g "big" 9 |]
      ~targets:[| dc "cheap" 10 10.0; dc "pricey" 20 100.0 |]
      ~user_locations:[| "a" |]
      ~current:[| dc "cur" 20 50.0 |]
      ~current_placement:[| 0; 0 |] ()
  in
  let p = Greedy.plan asis in
  Alcotest.(check int) "big group in cheap DC" 0 p.Placement.primary.(1);
  Alcotest.(check int) "small group overflows" 1 p.Placement.primary.(0)

let test_greedy_dr_distinct_sites () =
  let asis = Fixtures.asis () in
  let p = Greedy.plan_dr asis in
  Alcotest.(check (list string)) "valid DR plan" [] (Placement.validate asis p);
  match p.Placement.secondary with
  | None -> Alcotest.fail "expected secondary sites"
  | Some sec ->
      Array.iteri
        (fun i b ->
          Alcotest.(check bool) "secondary differs" true
            (b <> p.Placement.primary.(i)))
        sec

let test_greedy_dr_shares_pools () =
  (* Greedy-DR's marginal pricing must exploit single-failure sharing: the
     total pool is far below the total server count. *)
  let asis = Fixtures.synthetic ~seed:3 ~groups:30 ~targets:5 () in
  let p = Greedy.plan_dr asis in
  let pools = Placement.backup_servers asis p in
  let pool_total = Array.fold_left ( +. ) 0.0 pools in
  let servers = float_of_int (Asis.total_servers asis) in
  Alcotest.(check bool) "pool smaller than estate" true (pool_total < servers)

let test_manual_uses_few_sites () =
  let asis = Fixtures.synthetic ~seed:11 ~groups:40 ~targets:6 () in
  let p = Manual.plan ~num_dcs:2 asis in
  Alcotest.(check (list string)) "valid plan" [] (Placement.validate asis p);
  let used =
    Array.to_list p.Placement.primary |> List.sort_uniq compare |> List.length
  in
  (* Two chosen sites, plus possible overflow spill. *)
  Alcotest.(check bool) "about two sites" true (used <= 4)

let test_manual_grows_sites_for_capacity () =
  (* If two sites cannot hold the estate, manual adds more. *)
  let asis = Fixtures.synthetic ~seed:13 ~groups:40 ~targets:8 () in
  let p = Manual.plan ~num_dcs:1 asis in
  Alcotest.(check (list string)) "still feasible" [] (Placement.validate asis p)

let test_manual_dr_valid () =
  let asis = Fixtures.synthetic ~seed:19 ~groups:25 ~targets:6 () in
  let p = Manual.plan_dr ~num_dcs:2 asis in
  match p.Placement.secondary with
  | None -> Alcotest.fail "expected secondary"
  | Some sec ->
      Array.iteri
        (fun i b ->
          Alcotest.(check bool) "secondary differs from primary" true
            (b <> p.Placement.primary.(i)))
        sec

(* The paper's central qualitative claim for baselines: the manual approach
   ignores latency, so on latency-heavy estates it pays penalties that
   greedy reduces. *)
let test_manual_worse_on_latency () =
  let asis = Datasets.Synth.generate
      { Datasets.Synth.default with Datasets.Synth.seed = 77; n_groups = 40;
        n_targets = 8; n_current = 10; total_servers = 320 }
  in
  let manual = Evaluate.plan asis (Manual.plan asis) in
  let greedy = Evaluate.plan asis (Greedy.plan asis) in
  Alcotest.(check bool) "greedy pays less penalty" true
    (greedy.Evaluate.cost.Evaluate.latency_penalty
    <= manual.Evaluate.cost.Evaluate.latency_penalty)

let prop_greedy_feasible_across_seeds =
  QCheck2.Test.make ~name:"greedy always returns feasible plans" ~count:30
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed () in
      Placement.validate asis (Greedy.plan asis) = [])

let prop_manual_feasible_across_seeds =
  QCheck2.Test.make ~name:"manual always returns feasible plans" ~count:30
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed () in
      Placement.validate asis (Manual.plan asis) = [])

let suite =
  [
    Alcotest.test_case "greedy feasible" `Quick test_greedy_feasible;
    Alcotest.test_case "greedy capacity" `Quick test_greedy_respects_capacity;
    Alcotest.test_case "greedy prefers cheap" `Quick test_greedy_prefers_cheap;
    Alcotest.test_case "greedy largest first" `Quick test_greedy_order_largest_first;
    Alcotest.test_case "greedy DR distinct sites" `Quick test_greedy_dr_distinct_sites;
    Alcotest.test_case "greedy DR pool sharing" `Quick test_greedy_dr_shares_pools;
    Alcotest.test_case "manual uses few sites" `Quick test_manual_uses_few_sites;
    Alcotest.test_case "manual grows for capacity" `Quick test_manual_grows_sites_for_capacity;
    Alcotest.test_case "manual DR valid" `Quick test_manual_dr_valid;
    Alcotest.test_case "manual ignores latency" `Quick test_manual_worse_on_latency;
    QCheck_alcotest.to_alcotest prop_greedy_feasible_across_seeds;
    QCheck_alcotest.to_alcotest prop_manual_feasible_across_seeds;
  ]
