(* Oversized-group preprocessing (the paper's ref. [3] substitute). *)

open Etransform

let asis_with_giant () =
  let giant =
    App_group.v ~name:"giant" ~servers:25 ~data_mb_month:1000.0
      ~users:[| 100.0; 100.0 |] ()
  in
  let asis = Fixtures.asis () in
  {
    asis with
    Asis.groups = Array.append asis.Asis.groups [| giant |];
    current_placement = Array.append asis.Asis.current_placement [| 0 |];
  }

let test_detects_oversized () =
  let asis = asis_with_giant () in
  (* Largest target capacity is 20; the giant has 25 servers. *)
  Alcotest.(check (list int)) "giant flagged" [ 4 ] (Split.oversized asis)

let test_untouched_when_fits () =
  let asis = Fixtures.asis () in
  let same = Split.ensure_fits asis in
  Alcotest.(check int) "no change" (Asis.num_groups asis) (Asis.num_groups same)

let test_split_preserves_totals () =
  let asis = asis_with_giant () in
  let fixed = Split.ensure_fits asis in
  Alcotest.(check int) "servers preserved" (Asis.total_servers asis)
    (Asis.total_servers fixed);
  Alcotest.(check (list int)) "no oversized remain" [] (Split.oversized fixed);
  (* Users and traffic preserved in aggregate. *)
  let sum f estate =
    Array.fold_left (fun a g -> a +. f g) 0.0 estate.Asis.groups
  in
  Alcotest.(check (float 1e-6)) "traffic preserved"
    (sum (fun g -> g.App_group.data_mb_month) asis)
    (sum (fun g -> g.App_group.data_mb_month) fixed);
  Alcotest.(check (float 1e-6)) "users preserved"
    (sum App_group.total_users asis)
    (sum App_group.total_users fixed)

let test_split_parts_inherit () =
  let asis = asis_with_giant () in
  (* A 0.5 budget keeps parts small enough that the tight 39/40-server
     instance still packs. *)
  let fixed = Split.ensure_fits ~max_fraction:0.5 asis in
  let parts =
    Array.to_list fixed.Asis.groups
    |> List.filter (fun (g : App_group.t) ->
           String.length g.App_group.name >= 5
           && String.sub g.App_group.name 0 5 = "giant")
  in
  Alcotest.(check bool) "split into multiple parts" true (List.length parts >= 2);
  List.iter
    (fun (g : App_group.t) ->
      Alcotest.(check bool) "part fits largest target" true
        (g.App_group.servers <= 18))
    parts;
  (* The split estate still validates and plans end to end. *)
  Alcotest.(check (list string)) "validates" [] (Asis.validate fixed);
  let o = Solver.consolidate fixed in
  Alcotest.(check (list string)) "plannable" []
    (Placement.validate fixed o.Solver.placement)

let test_current_placement_follows () =
  let asis = asis_with_giant () in
  let fixed = Split.ensure_fits asis in
  Alcotest.(check int) "placement array tracks groups"
    (Asis.num_groups fixed)
    (Array.length fixed.Asis.current_placement)

let prop_split_preserves_server_totals =
  QCheck2.Test.make ~name:"split preserves server totals" ~count:30
    QCheck2.Gen.(int_range 0 4000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed ~groups:12 ~targets:3 () in
      let fixed = Split.ensure_fits ~max_fraction:0.3 asis in
      Asis.total_servers fixed = Asis.total_servers asis
      && Split.oversized ~max_fraction:0.3 fixed = [])

let suite =
  [
    Alcotest.test_case "detects oversized" `Quick test_detects_oversized;
    Alcotest.test_case "no-op when everything fits" `Quick test_untouched_when_fits;
    Alcotest.test_case "totals preserved" `Quick test_split_preserves_totals;
    Alcotest.test_case "parts inherit and plan" `Quick test_split_parts_inherit;
    Alcotest.test_case "placement array tracks" `Quick test_current_placement_follows;
    QCheck_alcotest.to_alcotest prop_split_preserves_server_totals;
  ]
