(* The end-to-end consolidation engine: optimality on small instances,
   robustness under budgets, local search, and the LP-rounding fallback. *)

open Etransform

let test_beats_baselines () =
  let asis = Fixtures.synthetic ~seed:1 ~groups:30 ~targets:5 () in
  let o = Solver.consolidate asis in
  let e = Evaluate.total o.Solver.summary.Evaluate.cost in
  let g = Evaluate.total (Evaluate.plan asis (Greedy.plan asis)).Evaluate.cost in
  let m = Evaluate.total (Evaluate.plan asis (Manual.plan asis)).Evaluate.cost in
  Alcotest.(check bool) "beats or ties greedy" true (e <= g +. 1e-6);
  Alcotest.(check bool) "beats or ties manual" true (e <= m +. 1e-6)

let test_feasible_outcome () =
  let asis = Fixtures.synthetic ~seed:2 () in
  let o = Solver.consolidate asis in
  Alcotest.(check (list string)) "placement feasible" []
    (Placement.validate asis o.Solver.placement)

let test_rejects_invalid_asis () =
  let asis = Fixtures.asis () in
  let broken = { asis with Asis.current_placement = [| 0 |] } in
  Alcotest.(check bool) "raises on invalid input" true
    (try
       ignore (Solver.consolidate broken);
       false
     with Invalid_argument _ -> true)

let test_budget_still_feasible () =
  let asis = Fixtures.synthetic ~seed:3 ~groups:40 ~targets:6 () in
  let milp =
    { Solver.default_milp_options with Lp.Milp.node_limit = 1; time_limit = 5.0 }
  in
  let o = Solver.consolidate ~milp asis in
  Alcotest.(check (list string)) "feasible under tiny budget" []
    (Placement.validate asis o.Solver.placement)

let test_local_search_improves_or_ties () =
  let asis = Fixtures.synthetic ~seed:4 ~groups:30 ~targets:5 () in
  let without = Solver.consolidate ~local_search:false asis in
  let with_ls = Solver.consolidate ~local_search:true asis in
  Alcotest.(check bool) "local search never hurts" true
    (Evaluate.total with_ls.Solver.summary.Evaluate.cost
    <= Evaluate.total without.Solver.summary.Evaluate.cost +. 1e-6)

let test_local_search_fixes_bad_plan () =
  let asis = Fixtures.asis () in
  (* Start from a deliberately bad plan: latency-sensitive groups on the
     wrong coasts. *)
  let bad = Placement.non_dr [| 1; 0; 2; 2 |] in
  let improved, moves = Local_search.improve asis bad in
  Alcotest.(check bool) "made moves" true (moves > 0);
  let before = Evaluate.total (Evaluate.plan asis bad).Evaluate.cost in
  let after = Evaluate.total (Evaluate.plan asis improved).Evaluate.cost in
  Alcotest.(check bool) "cost decreased" true (after < before)

let test_local_search_respects_constraints () =
  let asis = Fixtures.asis () in
  let g0 = { (Fixtures.group_0 ()) with App_group.allowed_dcs = Some [| 1 |] } in
  let groups = Array.copy asis.Asis.groups in
  groups.(0) <- g0;
  let asis = { asis with Asis.groups = groups } in
  let start = Placement.non_dr [| 1; 0; 2; 2 |] in
  let improved, _ = Local_search.improve asis start in
  Alcotest.(check int) "pinned group stays" 1 improved.Placement.primary.(0)

let test_solver_optimal_small () =
  (* On the fixture the engine must land on the global optimum of the exact
     (flat-pricing) cost: compare against exhaustive search over plans. *)
  let asis = Fixtures.asis () in
  let o = Solver.consolidate asis in
  let best = ref infinity in
  let assign = Array.make 4 0 in
  let rec enum i =
    if i = 4 then begin
      let p = Placement.non_dr (Array.copy assign) in
      if Placement.validate asis p = [] then begin
        let c = Evaluate.total (Evaluate.plan asis p).Evaluate.cost in
        if c < !best then best := c
      end
    end
    else
      for j = 0 to 2 do
        assign.(i) <- j;
        enum (i + 1)
      done
  in
  enum 0;
  Alcotest.(check (float 1e-6)) "global optimum" !best
    (Evaluate.total o.Solver.summary.Evaluate.cost)

let test_gap_reported () =
  let asis = Fixtures.synthetic ~seed:5 () in
  let o = Solver.consolidate asis in
  Alcotest.(check bool) "gap in [0,1]" true
    (o.Solver.milp_gap >= 0.0 && o.Solver.milp_gap <= 1.0)

let prop_solver_never_worse_than_greedy =
  QCheck2.Test.make ~name:"engine never loses to greedy" ~count:12
    QCheck2.Gen.(int_range 0 3000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed ~groups:20 ~targets:4 () in
      let o = Solver.consolidate asis in
      let e = Evaluate.total o.Solver.summary.Evaluate.cost in
      let g = Evaluate.total (Evaluate.plan asis (Greedy.plan asis)).Evaluate.cost in
      e <= g +. 1e-6)

let suite =
  [
    Alcotest.test_case "beats baselines" `Quick test_beats_baselines;
    Alcotest.test_case "feasible outcome" `Quick test_feasible_outcome;
    Alcotest.test_case "rejects invalid as-is" `Quick test_rejects_invalid_asis;
    Alcotest.test_case "tiny budgets stay feasible" `Quick test_budget_still_feasible;
    Alcotest.test_case "local search monotone" `Quick test_local_search_improves_or_ties;
    Alcotest.test_case "local search repairs" `Quick test_local_search_fixes_bad_plan;
    Alcotest.test_case "local search respects constraints" `Quick test_local_search_respects_constraints;
    Alcotest.test_case "optimal on fixture" `Quick test_solver_optimal_small;
    Alcotest.test_case "gap reported" `Quick test_gap_reported;
    QCheck_alcotest.to_alcotest prop_solver_never_worse_than_greedy;
  ]
