(* The exact cost evaluator against hand-computed numbers on the fixture
   estate (see fixtures.ml for the per-server cost table). *)

open Etransform

let total asis p = Evaluate.total (Evaluate.plan asis p).Evaluate.cost

let test_cost_model_components () =
  let asis = Fixtures.asis () in
  let a = asis.Asis.targets.(0) and b = asis.Asis.targets.(1) in
  Alcotest.(check (float 1e-9)) "power+labor at A" 20.0
    (Cost_model.power_labor_per_server asis a);
  Alcotest.(check (float 1e-9)) "power+labor at B" 40.0
    (Cost_model.power_labor_per_server asis b);
  Alcotest.(check (float 1e-9)) "wan g0 at A" 1.0
    (Cost_model.wan_cost asis ~group:0 a);
  Alcotest.(check (float 1e-9)) "wan g1 at B" 4.0
    (Cost_model.wan_cost asis ~group:1 b);
  Alcotest.(check (float 1e-9)) "avg latency g0 at A" 5.0
    (Cost_model.avg_latency_ms asis ~group:0 a);
  Alcotest.(check (float 1e-9)) "avg latency g2 at A" 12.5
    (Cost_model.avg_latency_ms asis ~group:2 a);
  Alcotest.(check (float 1e-9)) "penalty g0 at B" 100.0
    (Cost_model.latency_penalty asis ~group:0 b);
  Alcotest.(check (float 1e-9)) "penalty g0 at A" 0.0
    (Cost_model.latency_penalty asis ~group:0 a);
  (* Full assignment coefficient of g0 at A: 4 * (100+10+10) + 1 + 0. *)
  Alcotest.(check (float 1e-9)) "assign cost g0 at A" 481.0
    (Cost_model.assign_cost asis ~group:0 a)

let test_plan_breakdown () =
  let asis = Fixtures.asis () in
  (* g0->A, g1->B, g2->C, g3->A. *)
  let s = Evaluate.plan asis (Placement.non_dr [| 0; 1; 2; 0 |]) in
  let c = s.Evaluate.cost in
  (* space: A holds 6 servers @100, B 3 @80, C 5 @120. *)
  Alcotest.(check (float 1e-9)) "space" (600.0 +. 240.0 +. 600.0) c.Evaluate.space;
  (* power: A 6*10*1, B 3*10*2, C 5*10*1. *)
  Alcotest.(check (float 1e-9)) "power" (60.0 +. 60.0 +. 50.0) c.Evaluate.power;
  (* labor: A 6*10, B 3*20, C 5*10. *)
  Alcotest.(check (float 1e-9)) "labor" (60.0 +. 60.0 +. 50.0) c.Evaluate.labor;
  (* wan: 1000*1e-3 + 2000*2e-3 + 500*1e-3 + 100*1e-3. *)
  Alcotest.(check (float 1e-9)) "wan" 5.6 c.Evaluate.wan;
  Alcotest.(check (float 1e-9)) "no penalty" 0.0 c.Evaluate.latency_penalty;
  Alcotest.(check int) "no violations" 0 s.Evaluate.violations;
  Alcotest.(check int) "three DCs" 3 s.Evaluate.dcs_used

let test_plan_with_violations () =
  let asis = Fixtures.asis () in
  (* g0 (east users) at B sees 20ms -> $1 x 100 users; g1 (west) at A sees
     20ms -> $2 x 50. *)
  let s = Evaluate.plan asis (Placement.non_dr [| 1; 0; 2; 0 |]) in
  Alcotest.(check (float 1e-9)) "penalty" 200.0 s.Evaluate.cost.Evaluate.latency_penalty;
  Alcotest.(check int) "violations" 2 s.Evaluate.violations

let test_operational_excludes_penalty () =
  let asis = Fixtures.asis () in
  let s = Evaluate.plan asis (Placement.non_dr [| 1; 0; 2; 0 |]) in
  Alcotest.(check (float 1e-9)) "op = total - penalty"
    (Evaluate.total s.Evaluate.cost -. 200.0)
    (Evaluate.operational s.Evaluate.cost)

let test_dr_costs () =
  let asis = Fixtures.asis () in
  let p = Placement.with_dr ~primary:[| 0; 0; 1; 1 |] ~secondary:[| 2; 2; 2; 2 |] () in
  let s = Evaluate.plan asis p in
  (* Shared pool at C is 7 servers: capex 7 * 1000. *)
  Alcotest.(check (float 1e-9)) "backup capex" 7000.0 s.Evaluate.cost.Evaluate.backup_capex;
  (* Backup ops at C: 7 * (120 space + 10 power + 10 labor). *)
  Alcotest.(check (float 1e-9)) "backup ops" (7.0 *. 140.0)
    s.Evaluate.cost.Evaluate.backup_ops;
  Alcotest.(check int) "uses three DCs" 3 s.Evaluate.dcs_used

let test_asis_state_cost () =
  let asis = Fixtures.asis () in
  let s = Evaluate.asis_state asis in
  (* cur0 holds g0,g1 (7 servers @150); cur1 holds g2,g3 (7 @160). *)
  Alcotest.(check (float 1e-9)) "space" (7.0 *. 150.0 +. 7.0 *. 160.0)
    s.Evaluate.cost.Evaluate.space;
  Alcotest.(check int) "both DCs used" 2 s.Evaluate.dcs_used;
  (* cur0 at 15ms east violates g0 (threshold 10); g1's users are west at
     25ms, also violated. *)
  Alcotest.(check int) "violations" 2 s.Evaluate.violations

let test_asis_with_basic_dr_adds_cost () =
  let asis = Fixtures.asis () in
  let base = Evaluate.total (Evaluate.asis_state asis).Evaluate.cost in
  let dr = Evaluate.asis_with_basic_dr asis in
  Alcotest.(check bool) "strictly more expensive" true
    (Evaluate.total dr.Evaluate.cost > base);
  (* Worst single site holds 7 servers -> pool of 7 at the backup site. *)
  Alcotest.(check (float 1e-9)) "pool sized for worst site" 7000.0
    dr.Evaluate.cost.Evaluate.backup_capex

let test_vpn_wan_mode () =
  let asis = Fixtures.asis () in
  let vpn_params = { Fixtures.params with Asis.use_vpn = true;
                     vpn_link_capacity_mb = 500.0 } in
  let targets =
    Array.map
      (fun (d : Data_center.t) -> { d with Data_center.vpn_monthly = [| 10.0; 30.0 |] })
      asis.Asis.targets
  in
  let asis = { asis with Asis.params = vpn_params; targets } in
  (* g0: all users east, 1000 Mb/mo over 500 Mb links -> 2 links at $10. *)
  Alcotest.(check (float 1e-9)) "vpn links east" 20.0
    (Cost_model.wan_cost asis ~group:0 asis.Asis.targets.(0));
  (* g2: users 20/20, 500 Mb total -> 0.5 links each way: 0.5*10 + 0.5*30. *)
  Alcotest.(check (float 1e-9)) "vpn links split" 20.0
    (Cost_model.wan_cost asis ~group:2 asis.Asis.targets.(0))

let test_fixed_charges_counted_once () =
  let asis = Fixtures.asis () in
  let targets =
    Array.map
      (fun (d : Data_center.t) ->
        { d with Data_center.rates = { d.Data_center.rates with Data_center.fixed_monthly = 1000.0 } })
      asis.Asis.targets
  in
  let asis = { asis with Asis.targets } in
  let one_dc = Evaluate.plan asis (Placement.non_dr [| 2; 2; 2; 2 |]) in
  Alcotest.(check (float 1e-9)) "one site opened" 1000.0 one_dc.Evaluate.cost.Evaluate.fixed;
  let two_dc = Evaluate.plan asis (Placement.non_dr [| 0; 0; 2; 2 |]) in
  Alcotest.(check (float 1e-9)) "two sites opened" 2000.0 two_dc.Evaluate.cost.Evaluate.fixed

(* Consistency: the evaluator's total equals the sum of its parts, for any
   feasible plan on a synthetic estate. *)
let prop_total_is_sum =
  QCheck2.Test.make ~name:"breakdown sums to total" ~count:50
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed () in
      let p = Greedy.plan asis in
      let s = Evaluate.plan asis p in
      let c = s.Evaluate.cost in
      let parts =
        c.Evaluate.space +. c.Evaluate.wan +. c.Evaluate.power
        +. c.Evaluate.labor +. c.Evaluate.fixed +. c.Evaluate.latency_penalty
        +. c.Evaluate.backup_capex +. c.Evaluate.backup_ops
      in
      Float.abs (parts -. Evaluate.total c) < 1e-6 *. (1.0 +. parts))

let prop_moving_to_cheaper_dc_never_counted_wrong =
  (* Evaluating the same plan twice is deterministic. *)
  QCheck2.Test.make ~name:"evaluation deterministic" ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed () in
      let p = Greedy.plan asis in
      total asis p = total asis p)

let suite =
  [
    Alcotest.test_case "cost model components" `Quick test_cost_model_components;
    Alcotest.test_case "plan breakdown" `Quick test_plan_breakdown;
    Alcotest.test_case "violations counted" `Quick test_plan_with_violations;
    Alcotest.test_case "operational vs total" `Quick test_operational_excludes_penalty;
    Alcotest.test_case "DR pool costs" `Quick test_dr_costs;
    Alcotest.test_case "as-is state cost" `Quick test_asis_state_cost;
    Alcotest.test_case "as-is + basic DR" `Quick test_asis_with_basic_dr_adds_cost;
    Alcotest.test_case "VPN WAN pricing" `Quick test_vpn_wan_mode;
    Alcotest.test_case "fixed charges once per site" `Quick test_fixed_charges_counted_once;
    QCheck_alcotest.to_alcotest prop_total_is_sum;
    QCheck_alcotest.to_alcotest prop_moving_to_cheaper_dc_never_counted_wrong;
  ]
