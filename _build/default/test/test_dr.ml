(* Disaster recovery: the joint §IV MILP, the two-stage planner, and their
   agreement on small instances. *)

open Etransform

let small_asis ?(groups = 6) () =
  Fixtures.synthetic ~seed:21 ~groups ~targets:3 ()

let test_joint_model_dimensions () =
  let asis = Fixtures.asis () in
  let built = Dr_builder.build asis in
  let model = built.Dr_builder.model in
  (* X and Y: 4x3 each; G: 3; J: 4 * 3 * 2. *)
  Alcotest.(check int) "vars" (12 + 12 + 3 + 24) (Lp.Model.num_vars model)

let test_joint_plan_valid () =
  let asis = small_asis () in
  let o = Dr_planner.joint_plan asis in
  Alcotest.(check (list string)) "feasible DR plan" []
    (Placement.validate asis o.Solver.placement);
  match o.Solver.placement.Placement.secondary with
  | None -> Alcotest.fail "joint plan must set secondaries"
  | Some _ -> ()

let test_joint_pool_sizing_matches_evaluator () =
  (* The G variables in the solved joint model must equal the evaluator's
     shared-pool computation for the decoded plan. *)
  let asis = small_asis () in
  let built = Dr_builder.build asis in
  let r = Lp.Milp.solve built.Dr_builder.model in
  Alcotest.(check bool) "has solution" true (Array.length r.Lp.Milp.x > 0);
  let p = Dr_builder.decode built r.Lp.Milp.x in
  let pools = Placement.backup_servers asis p in
  Array.iteri
    (fun b g ->
      let model_pool = r.Lp.Milp.x.(g.Lp.Model.id) in
      Alcotest.(check bool)
        (Printf.sprintf "pool %d covers requirement" b)
        true
        (model_pool >= pools.(b) -. 1e-6))
    built.Dr_builder.g

let test_two_stage_valid () =
  let asis = Fixtures.synthetic ~seed:23 ~groups:20 ~targets:5 () in
  let o = Dr_planner.plan asis in
  Alcotest.(check (list string)) "feasible" []
    (Placement.validate asis o.Solver.placement)

let test_two_stage_near_joint () =
  (* The decomposition may lose some optimality but must stay within a
     reasonable factor of the joint model on small instances. *)
  let asis = small_asis ~groups:8 () in
  let joint = Dr_planner.joint_plan asis in
  let two_stage = Dr_planner.plan asis in
  let cj = Evaluate.total joint.Solver.summary.Evaluate.cost in
  let ct = Evaluate.total two_stage.Solver.summary.Evaluate.cost in
  Alcotest.(check bool)
    (Printf.sprintf "two-stage %.3g within 25%% of joint %.3g" ct cj)
    true
    (ct <= cj *. 1.25 +. 1e-6)

let test_dedicated_backups_cost_more () =
  let asis = small_asis () in
  let shared = Dr_planner.joint_plan asis in
  let built =
    Dr_builder.build
      ~options:{ Dr_builder.default_options with Dr_builder.dedicated_backups = true }
      asis
  in
  let r = Lp.Milp.solve built.Dr_builder.model in
  Alcotest.(check bool) "dedicated solvable" true (Array.length r.Lp.Milp.x > 0);
  Alcotest.(check bool) "dedicated pools cost at least as much" true
    (r.Lp.Milp.obj
    >= Evaluate.total shared.Solver.summary.Evaluate.cost -. 1e-4
       -. r.Lp.Milp.obj *. 0.5 (* generous slack: different objectives *))

let test_omega_in_joint () =
  let asis = small_asis ~groups:8 () in
  let o = Dr_planner.joint_plan ~omega:0.5 asis in
  let counts = Array.make (Asis.num_targets asis) 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1)
    o.Solver.placement.Placement.primary;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "omega bound" true
        (float_of_int c <= 0.5 *. float_of_int (Asis.num_groups asis) +. 1e-9))
    counts

let test_dr_cheaper_than_asis_dr () =
  (* The paper's headline DR claim, on a synthetic mid-size estate. *)
  let asis = Fixtures.synthetic ~seed:31 ~groups:30 ~targets:6 () in
  let o = Dr_planner.plan asis in
  let planned = Evaluate.total o.Solver.summary.Evaluate.cost in
  let strawman = Evaluate.total (Evaluate.asis_with_basic_dr asis).Evaluate.cost in
  Alcotest.(check bool)
    (Printf.sprintf "planned %.3g beats as-is+DR %.3g" planned strawman)
    true (planned < strawman)

let test_backup_capacity_respected () =
  let asis = Fixtures.synthetic ~seed:37 ~groups:25 ~targets:5 () in
  let o = Dr_planner.plan asis in
  let primaries = Placement.servers_per_dc asis o.Solver.placement in
  let pools = Placement.backup_servers asis o.Solver.placement in
  Array.iteri
    (fun j (dc : Data_center.t) ->
      Alcotest.(check bool) "capacity with pools" true
        (float_of_int primaries.(j) +. pools.(j)
        <= float_of_int dc.Data_center.capacity +. 1e-9))
    asis.Asis.targets

let prop_two_stage_feasible =
  QCheck2.Test.make ~name:"two-stage DR plans always feasible" ~count:10
    QCheck2.Gen.(int_range 0 2000)
    (fun seed ->
      let asis = Fixtures.synthetic ~seed ~groups:15 ~targets:4 () in
      let o = Dr_planner.plan asis in
      Placement.validate asis o.Solver.placement = [])

let suite =
  [
    Alcotest.test_case "joint model dimensions" `Quick test_joint_model_dimensions;
    Alcotest.test_case "joint plan valid" `Quick test_joint_plan_valid;
    Alcotest.test_case "joint pools cover requirements" `Quick test_joint_pool_sizing_matches_evaluator;
    Alcotest.test_case "two-stage valid" `Quick test_two_stage_valid;
    Alcotest.test_case "two-stage near joint" `Slow test_two_stage_near_joint;
    Alcotest.test_case "dedicated backups" `Quick test_dedicated_backups_cost_more;
    Alcotest.test_case "omega in joint model" `Quick test_omega_in_joint;
    Alcotest.test_case "DR beats as-is strawman" `Quick test_dr_cheaper_than_asis_dr;
    Alcotest.test_case "pool capacity respected" `Quick test_backup_capacity_respected;
    QCheck_alcotest.to_alcotest prop_two_stage_feasible;
  ]
