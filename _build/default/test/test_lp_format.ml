(* LP-format writer/parser round-trips and MPS writer sanity. *)

open Lp

let sample_model () =
  let m = Model.create ~name:"sample" () in
  let x = Model.add_var m ~hi:4.0 "x" in
  let y = Model.add_var m ~lo:(-1.0) ~hi:3.5 "why" in
  let z = Model.add_var m ~binary:true "z" in
  let w = Model.add_var m ~integer:true ~hi:7.0 "w" in
  Model.add_le m "c1" Model.Linexpr.(sum [ var x; term 2.0 y; term (-3.0) z ]) 9.0;
  Model.add_ge m "c2" Model.Linexpr.(add (var y) (term 4.0 w)) 2.0;
  Model.add_eq m "c3" Model.Linexpr.(sub (var x) (var w)) 0.0;
  Model.set_objective m
    Model.Linexpr.(sum [ term 3.0 x; term (-1.0) y; term 10.0 z; var w ]);
  m

let solve m =
  let r = Milp.solve m in
  (r.Milp.status, r.Milp.obj)

let test_roundtrip_solution_equal () =
  let m = sample_model () in
  let text = Lp_format.model_to_string m in
  let m' = Lp_parse.model_of_string text in
  Alcotest.(check int) "vars" (Model.num_vars m) (Model.num_vars m');
  Alcotest.(check int) "constrs" (Model.num_constrs m) (Model.num_constrs m');
  let s1, o1 = solve m and s2, o2 = solve m' in
  Alcotest.(check string) "status" (Status.to_string s1) (Status.to_string s2);
  Alcotest.(check (float 1e-6)) "objective preserved" o1 o2

let test_roundtrip_twice_stable () =
  let m = sample_model () in
  let t1 = Lp_format.model_to_string m in
  let t2 = Lp_format.model_to_string (Lp_parse.model_of_string ~name:"sample" t1) in
  Alcotest.(check string) "fixed point" t1 t2

let test_sections_written () =
  let text = Lp_format.model_to_string (sample_model ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true
        (Astring_contains.contains text needle))
    [ "Minimize"; "Subject To"; "Bounds"; "Binaries"; "Generals"; "End" ]

let test_maximize_preserved () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:2.0 "x" in
  Model.set_objective m ~minimize:false (Model.Linexpr.var x);
  let m' = Lp_parse.model_of_string (Lp_format.model_to_string m) in
  Alcotest.(check bool) "maximize" false (Model.minimize m');
  let _, o = solve m' in
  Alcotest.(check (float 1e-9)) "obj" 2.0 o

let test_sanitize_names () =
  Alcotest.(check string) "spaces" "a_b" (Lp_format.sanitize_name "a b");
  Alcotest.(check string) "leading digit" "x1a" (Lp_format.sanitize_name "1a");
  Alcotest.(check string) "leading e" "xe10" (Lp_format.sanitize_name "e10");
  Alcotest.(check string) "empty" "x" (Lp_format.sanitize_name "")

let test_parse_free_and_inf () =
  let text =
    "Minimize\n obj: x + y\nSubject To\n c: x + y >= -2\nBounds\n x free\n \
     -inf <= y <= 4\nEnd\n"
  in
  let m = Lp_parse.model_of_string text in
  let r = Milp.solve m in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Milp.status);
  Alcotest.(check (float 1e-6)) "obj" (-2.0) r.Milp.obj

let test_parse_errors () =
  let bad = "Minimize\n obj: x\nSubject To\n c: x * 1\nEnd\n" in
  Alcotest.check_raises "bad char"
    (Lp_parse.Parse_error "unexpected character '*'") (fun () ->
      ignore (Lp_parse.model_of_string bad));
  let missing_rhs = "Minimize\n obj: x\nSubject To\n c: x <=\nEnd\n" in
  Alcotest.check_raises "missing rhs"
    (Lp_parse.Parse_error "constraint 0: expected relation and rhs") (fun () ->
      ignore (Lp_parse.model_of_string missing_rhs))

let test_solution_file () =
  let m = sample_model () in
  let r = Milp.solve m in
  let text =
    Lp_format.solution_to_string m ~status:r.Milp.status ~obj:r.Milp.obj
      r.Milp.x
  in
  Alcotest.(check bool) "has status line" true
    (Astring_contains.contains text "status: optimal");
  Alcotest.(check bool) "has objective" true
    (Astring_contains.contains text "objective:")

let test_mps_writer () =
  let text = Mps_format.model_to_string (sample_model ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true
        (Astring_contains.contains text needle))
    [ "NAME"; "ROWS"; "COLUMNS"; "RHS"; "BOUNDS"; "ENDATA"; "INTORG" ]

let prop_random_models_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* rows = int_range 0 5 in
      let* coeffs = list_repeat ((rows + 1) * n) (int_range (-9) 9) in
      let* rhss = list_repeat (max rows 1) (int_range (-20) 20) in
      let* senses = list_repeat (max rows 1) (int_range 0 2) in
      let* kinds = list_repeat n (int_range 0 2) in
      return (n, rows, Array.of_list coeffs, Array.of_list rhss,
              Array.of_list senses, Array.of_list kinds))
  in
  QCheck2.Test.make ~name:"random models round-trip through LP format"
    ~count:80 gen (fun (n, rows, coeffs, rhss, senses, kinds) ->
      let m = Model.create () in
      let vars =
        Array.init n (fun i ->
            match kinds.(i) with
            | 0 -> Model.add_var m ~hi:6.0 (Printf.sprintf "v%d" i)
            | 1 -> Model.add_var m ~binary:true (Printf.sprintf "v%d" i)
            | _ -> Model.add_var m ~integer:true ~hi:4.0 (Printf.sprintf "v%d" i))
      in
      for r = 0 to rows - 1 do
        let e =
          Model.Linexpr.sum
            (List.init n (fun j ->
                 Model.Linexpr.term
                   (float_of_int coeffs.(((r + 1) * n) + j))
                   vars.(j)))
        in
        let sense =
          match senses.(r) with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
        in
        (* Keep equality rows satisfiable: anchor them at zero. *)
        let rhs =
          if sense = Model.Eq then 0.0 else float_of_int rhss.(r)
        in
        Model.add_constr m (Printf.sprintf "r%d" r) e sense rhs
      done;
      Model.set_objective m
        (Model.Linexpr.sum
           (List.init n (fun j ->
                Model.Linexpr.term (float_of_int coeffs.(j)) vars.(j))));
      let m' = Lp_parse.model_of_string (Lp_format.model_to_string m) in
      let r1 = Milp.solve m and r2 = Milp.solve m' in
      if r1.Milp.status <> r2.Milp.status then
        QCheck2.Test.fail_reportf "status %s vs %s"
          (Status.to_string r1.Milp.status)
          (Status.to_string r2.Milp.status);
      if
        r1.Milp.status = Status.Optimal
        && Float.abs (r1.Milp.obj -. r2.Milp.obj) > 1e-6
      then QCheck2.Test.fail_reportf "objective %g vs %g" r1.Milp.obj r2.Milp.obj;
      true)

let suite =
  [
    Alcotest.test_case "roundtrip preserves optimum" `Quick test_roundtrip_solution_equal;
    Alcotest.test_case "write-parse-write is stable" `Quick test_roundtrip_twice_stable;
    Alcotest.test_case "all sections written" `Quick test_sections_written;
    Alcotest.test_case "maximize preserved" `Quick test_maximize_preserved;
    Alcotest.test_case "name sanitizer" `Quick test_sanitize_names;
    Alcotest.test_case "free and infinite bounds" `Quick test_parse_free_and_inf;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "solution file" `Quick test_solution_file;
    Alcotest.test_case "mps writer" `Quick test_mps_writer;
    QCheck_alcotest.to_alcotest prop_random_models_roundtrip;
  ]
