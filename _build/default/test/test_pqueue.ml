(* The heap underlies best-bound node selection in branch-and-bound. *)

open Lp

let test_ordering () =
  let h = Pqueue.create () in
  List.iter (fun k -> Pqueue.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop h with
    | None -> ()
    | Some (_, v) ->
        out := v :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 5; 4; 3; 2; 1 ] !out

let test_empty () =
  let h = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty h);
  Alcotest.(check bool) "pop none" true (Pqueue.pop h = None);
  Alcotest.(check bool) "min none" true (Pqueue.min_key h = None)

let test_min_key () =
  let h = Pqueue.create () in
  Pqueue.push h 7.0 "a";
  Pqueue.push h 2.0 "b";
  Alcotest.(check bool) "min" true (Pqueue.min_key h = Some 2.0);
  Alcotest.(check int) "len" 2 (Pqueue.length h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains keys in nondecreasing order" ~count:200
    QCheck2.Gen.(list (float_range (-100.0) 100.0))
    (fun keys ->
      let h = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.push h k i) keys;
      let rec drain acc =
        match Pqueue.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      List.length out = List.length keys
      && out = List.sort compare keys)

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "min key and length" `Quick test_min_key;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
  ]
