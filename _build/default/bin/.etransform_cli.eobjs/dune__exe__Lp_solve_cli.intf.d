bin/lp_solve_cli.mli:
