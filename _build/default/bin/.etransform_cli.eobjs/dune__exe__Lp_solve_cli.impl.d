bin/lp_solve_cli.ml: Arg Array Cmd Cmdliner Fmt List Lp Printf Term
