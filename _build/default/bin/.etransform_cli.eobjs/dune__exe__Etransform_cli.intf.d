bin/etransform_cli.mli:
