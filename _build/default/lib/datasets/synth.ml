open Etransform

type config = {
  name : string;
  seed : int;
  n_groups : int;
  n_current : int;
  n_targets : int;
  total_servers : int;
  n_user_locations : int;
  latency_sensitive_fraction : float;
  latency_threshold_ms : float;
  latency_penalty_per_user : float;
  capacity_range : int * int;
  users_per_server : float * float;
  data_mb_per_user : float * float;
  markets : Reference_costs.market array;
  use_vpn : bool;
}

let default =
  {
    name = "synthetic";
    seed = 42;
    n_groups = 50;
    n_current = 12;
    n_targets = 6;
    total_servers = 400;
    n_user_locations = 4;
    latency_sensitive_fraction = 0.5;
    latency_threshold_ms = 10.0;
    latency_penalty_per_user = 100.0;
    capacity_range = (100, 1000);
    users_per_server = (8.0, 40.0);
    data_mb_per_user = (200.0, 2000.0);
    markets = Reference_costs.us_markets;
    use_vpn = false;
  }

let scale c f =
  let s n ~min:m = max m (int_of_float (Float.round (float_of_int n *. f))) in
  {
    c with
    name = (if f = 1.0 then c.name else Printf.sprintf "%s_x%.2f" c.name f);
    n_groups = s c.n_groups ~min:8;
    n_current = s c.n_current ~min:4;
    n_targets = s c.n_targets ~min:4;
    total_servers = s c.total_servers ~min:(2 * s c.n_groups ~min:8);
  }

(* The paper's user-distribution classes: all users at one of the R
   locations, or spread evenly over all of them. *)
let user_vector rng cfg ~total_users =
  let r = cfg.n_user_locations in
  let cls = Prng.int rng (r + 1) in
  if cls = r then Array.make r (total_users /. float_of_int r)
  else
    Array.init r (fun k -> if k = cls then total_users else 0.0)

let make_groups rng cfg =
  let weights =
    Distributions.zipf_weights ~n:cfg.n_groups ~s:1.1
  in
  Prng.shuffle rng weights;
  let servers =
    Distributions.partition_integer rng ~total:cfg.total_servers
      ~weights ~min_each:1
  in
  Array.init cfg.n_groups (fun i ->
      let s = servers.(i) in
      let ups = Prng.range rng (fst cfg.users_per_server) (snd cfg.users_per_server) in
      let total_users = Float.max 1.0 (Float.round (float_of_int s *. ups)) in
      let users = user_vector rng cfg ~total_users in
      let per_user = Prng.range rng (fst cfg.data_mb_per_user) (snd cfg.data_mb_per_user) in
      let latency =
        if Prng.float rng < cfg.latency_sensitive_fraction then
          Latency_penalty.step ~threshold_ms:cfg.latency_threshold_ms
            ~penalty_per_user:cfg.latency_penalty_per_user
        else Latency_penalty.none
      in
      App_group.v ~latency
        ~name:(Printf.sprintf "grp_%03d" i)
        ~servers:s
        ~data_mb_month:(total_users *. per_user)
        ~users ())

let make_targets rng cfg ~total_servers =
  let lat, _classes =
    Geo.Topology.paper_classes ~n_dcs:cfg.n_targets
      ~n_users:cfg.n_user_locations ()
  in
  let lo, hi = cfg.capacity_range in
  let caps =
    Array.init cfg.n_targets (fun _ -> lo + Prng.int rng (max 1 (hi - lo)))
  in
  (* Guarantee enough total room (DR plans need headroom too). *)
  let total_cap = Array.fold_left ( + ) 0 caps in
  let need = int_of_float (1.4 *. float_of_int total_servers) in
  let caps =
    if total_cap >= need then caps
    else begin
      let f = float_of_int need /. float_of_int total_cap in
      Array.map (fun c -> int_of_float (Float.ceil (float_of_int c *. f))) caps
    end
  in
  Array.init cfg.n_targets (fun j ->
      let mk = Prng.pick rng cfg.markets in
      let vpn =
        Array.map
          (fun l -> Reference_costs.vpn_monthly ~latency_ms:l)
          lat.(j)
      in
      (* A staffed site carries one administrator as a base charge; scale
         effects on labor come from amortizing it over more servers. *)
      Data_center.v
        ~fixed_monthly:mk.Reference_costs.admin_monthly
        ~name:(Printf.sprintf "target_%02d_%s" j
                 (String.map (fun c -> if c = ' ' then '_' else c) mk.Reference_costs.market))
        ~capacity:caps.(j)
        ~space_segments:
          (Reference_costs.volume_segments ~capacity:caps.(j)
             ~per_server:mk.Reference_costs.space_per_server)
        ~wan_per_mb:mk.Reference_costs.wan_per_mb
        ~power_per_kwh:mk.Reference_costs.power_per_kwh
        ~admin_monthly:mk.Reference_costs.admin_monthly
        ~user_latency_ms:lat.(j) ~vpn_monthly:vpn ())

let make_current rng cfg groups =
  (* Scatter groups over many small, unoptimized sites: flat pricing at a
     markup, mediocre latency — the estate consolidation will clean up. *)
  let weights = Distributions.zipf_weights ~n:cfg.n_current ~s:0.8 in
  let placement =
    Array.init (Array.length groups) (fun _ ->
        Distributions.categorical rng weights)
  in
  let assigned = Array.make cfg.n_current 0 in
  Array.iteri
    (fun i c ->
      assigned.(c) <- assigned.(c) + groups.(i).App_group.servers)
    placement;
  let current =
    Array.init cfg.n_current (fun c ->
        let mk = Prng.pick rng cfg.markets in
        let markup = Prng.range rng 1.15 1.6 in
        let lat =
          Array.init cfg.n_user_locations (fun _ -> Prng.range rng 8.0 35.0)
        in
        let cap = max assigned.(c) 1 in
        Data_center.v
          ~fixed_monthly:(mk.Reference_costs.admin_monthly *. markup)
          ~name:(Printf.sprintf "current_%02d" c)
          ~capacity:cap
          ~space_segments:
            (Data_center.flat_space ~capacity:cap
               ~per_server:(mk.Reference_costs.space_per_server *. markup))
          ~wan_per_mb:(mk.Reference_costs.wan_per_mb *. 1.3)
          ~power_per_kwh:mk.Reference_costs.power_per_kwh
          ~admin_monthly:mk.Reference_costs.admin_monthly
          ~user_latency_ms:lat ())
  in
  (current, placement)

let generate cfg =
  let rng = Prng.create cfg.seed in
  let groups = make_groups (Prng.split rng) cfg in
  let targets =
    make_targets (Prng.split rng) cfg ~total_servers:cfg.total_servers
  in
  let current, placement = make_current (Prng.split rng) cfg groups in
  let params = { Asis.default_params with Asis.use_vpn = cfg.use_vpn } in
  let asis =
    Asis.v ~params ~name:cfg.name ~groups ~targets
      ~user_locations:
        (Array.init cfg.n_user_locations (Printf.sprintf "location_%d"))
      ~current ~current_placement:placement ()
  in
  (* Mirror the paper's preprocessing: partition any group too large for
     every target (ref. [3]) before planning.  The budget leaves room for
     DR capacity reservations on top of the placement itself. *)
  let asis = Split.ensure_fits ~max_fraction:0.55 asis in
  match Asis.validate asis with
  | [] -> asis
  | problems ->
      failwith
        (Printf.sprintf "Synth.generate(%s): %s" cfg.name
           (String.concat "; " problems))
