let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Distributions.zipf_weights";
  let w = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let partition_integer rng ~total ~weights ~min_each =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Distributions.partition_integer: no parts";
  if total < n * min_each then
    invalid_arg "Distributions.partition_integer: total too small";
  let base = Array.make n min_each in
  let remaining = ref (total - (n * min_each)) in
  (* Largest-remainder apportionment of what is left. *)
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let shares =
    Array.map (fun w -> w /. wsum *. float_of_int !remaining) weights
  in
  let floors = Array.map (fun s -> int_of_float (Float.floor s)) shares in
  Array.iteri
    (fun i f ->
      base.(i) <- base.(i) + f;
      remaining := !remaining - f)
    floors;
  (* Hand out the leftover units by descending fractional part, breaking
     ties randomly for variety across seeds. *)
  let order = Array.init n Fun.id in
  Prng.shuffle rng order;
  Array.sort
    (fun a b ->
      compare
        (shares.(b) -. Float.floor shares.(b))
        (shares.(a) -. Float.floor shares.(a)))
    order;
  let k = ref 0 in
  while !remaining > 0 do
    base.(order.(!k mod n)) <- base.(order.(!k mod n)) + 1;
    decr remaining;
    incr k
  done;
  base

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Distributions.categorical: zero mass";
  let target = Prng.float rng *. total in
  let acc = ref 0.0 and found = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if !acc > target then begin
           found := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !found

let bounded_lognormal rng ~mu ~sigma ~lo ~hi =
  let rec go fuel =
    let x = Prng.lognormal rng ~mu ~sigma in
    if (x >= lo && x <= hi) || fuel = 0 then Float.min hi (Float.max lo x)
    else go (fuel - 1)
  in
  go 20
