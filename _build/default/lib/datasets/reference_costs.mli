(** Embedded price tables standing in for the reports the paper cites:
    Telegeography colocation pricing, the Global Knowledge IT salary survey,
    EIA retail electricity by state, and Amazon's WAN cost calculator.

    Magnitudes are representative of the paper's 2010-2012 window; the
    optimizer's behaviour depends on the *dispersion* across markets, which
    these tables preserve. *)

type market = {
  market : string;
  power_per_kwh : float;    (** $/kWh retail (EIA-style) *)
  admin_monthly : float;    (** fully-loaded monthly administrator cost *)
  space_per_server : float; (** first-tier colocation $/server-month *)
  wan_per_mb : float;       (** $/Mb transferred (committed enterprise WAN) *)
}

(** US state markets (the Florida and Federal studies are domestic). *)
val us_markets : market array

(** World metros for the multinational Enterprise1 estate. *)
val world_markets : market array

val find : string -> market option

(** [volume_segments ~capacity ~per_server] builds the paper's
    economies-of-scale curve: list price for the first tranche, 15%% off the
    second, 30%% off beyond, each tranche a third of capacity. *)
val volume_segments :
  capacity:int -> per_server:float -> Lp.Piecewise.segment list

(** [vpn_monthly ~latency_ms] prices a dedicated VPN link by
    distance (latency as proxy), like carrier point-to-point circuits. *)
val vpn_monthly : latency_ms:float -> float
