(** Enterprise estate synthesizer.

    Reconstructs "as-is" states from the published summary statistics
    (paper Table II, Figs. 2-3) the same way the paper itself bootstraps the
    Florida and Federal datasets from the Enterprise1 distributions: a
    Zipf-skewed split of servers over application groups, the §VI-B user
    distribution classes over four client locations, the five target
    latency classes, and market-priced target sites.

    Everything is driven by a seeded {!Prng}, so a config generates the
    identical estate on every run. *)

type config = {
  name : string;
  seed : int;
  n_groups : int;
  n_current : int;            (** data centers in the as-is estate *)
  n_targets : int;
  total_servers : int;
  n_user_locations : int;     (** the paper uses 4 *)
  latency_sensitive_fraction : float;
  latency_threshold_ms : float;
  latency_penalty_per_user : float;
  capacity_range : int * int; (** paper: 100 to 1000 servers per target *)
  users_per_server : float * float;
  data_mb_per_user : float * float;
  markets : Reference_costs.market array;
  use_vpn : bool;
}

val default : config

(** [scale c f] shrinks a config by factor [f] (groups, servers, sites),
    for running case studies within the bundled solver's envelope. *)
val scale : config -> float -> config

val generate : config -> Etransform.Asis.t
