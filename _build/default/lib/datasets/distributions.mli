(** Samplers for the skewed size distributions enterprise estates exhibit:
    a few huge application groups, many small ones. *)

(** [zipf_weights ~n ~s] are normalized weights proportional to 1/k^s. *)
val zipf_weights : n:int -> s:float -> float array

(** [partition_integer rng ~total ~weights ~min_each] splits [total] into
    [Array.length weights] positive integer parts approximately proportional
    to the weights; parts never fall below [min_each] and always sum to
    [total]. *)
val partition_integer :
  Prng.t -> total:int -> weights:float array -> min_each:int -> int array

(** [categorical rng weights] samples an index with probability proportional
    to its (non-negative) weight. *)
val categorical : Prng.t -> float array -> int

(** [bounded_lognormal rng ~mu ~sigma ~lo ~hi] resamples into the bounds. *)
val bounded_lognormal :
  Prng.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
