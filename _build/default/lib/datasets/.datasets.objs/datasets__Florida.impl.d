lib/datasets/florida.ml: Reference_costs Synth
