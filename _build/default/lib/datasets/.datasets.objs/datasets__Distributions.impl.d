lib/datasets/distributions.ml: Array Float Fun Prng
