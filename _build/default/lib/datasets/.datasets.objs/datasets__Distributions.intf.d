lib/datasets/distributions.mli: Prng
