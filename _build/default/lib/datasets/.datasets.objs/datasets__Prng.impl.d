lib/datasets/prng.ml: Array Float Int64
