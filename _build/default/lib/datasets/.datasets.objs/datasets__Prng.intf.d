lib/datasets/prng.mli:
