lib/datasets/enterprise1.ml: Reference_costs Synth
