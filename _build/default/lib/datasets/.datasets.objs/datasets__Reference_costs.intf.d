lib/datasets/reference_costs.mli: Lp
