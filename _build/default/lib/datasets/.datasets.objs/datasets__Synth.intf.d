lib/datasets/synth.mli: Etransform Reference_costs
