lib/datasets/synth.ml: App_group Array Asis Data_center Distributions Etransform Float Geo Latency_penalty Printf Prng Reference_costs Split String
