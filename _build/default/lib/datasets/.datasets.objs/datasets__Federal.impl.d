lib/datasets/federal.ml: Reference_costs Synth
