lib/datasets/reference_costs.ml: Array List Lp
