type market = {
  market : string;
  power_per_kwh : float;
  admin_monthly : float;
  space_per_server : float;
  wan_per_mb : float;
}

let m market power_per_kwh admin_annual space_per_server wan_per_mb =
  { market; power_per_kwh; admin_monthly = admin_annual /. 12.0;
    space_per_server; wan_per_mb }

(* power: EIA 2010 average retail $/kWh; salary: IT admin annual, fully
   loaded; space: colo $/server-month by market tier; wan: $/Mb for
   committed enterprise transit. *)
let us_markets =
  [|
    m "Washington" 0.066 88_000.0 180.0 3.0e-4;
    m "Oregon" 0.074 82_000.0 170.0 3.0e-4;
    m "Idaho" 0.062 70_000.0 140.0 3.6e-4;
    m "Utah" 0.069 74_000.0 150.0 3.4e-4;
    m "Texas" 0.092 84_000.0 175.0 2.8e-4;
    m "Oklahoma" 0.071 69_000.0 145.0 3.5e-4;
    m "Iowa" 0.078 71_000.0 150.0 3.3e-4;
    m "Illinois" 0.089 86_000.0 210.0 2.6e-4;
    m "Georgia" 0.088 80_000.0 190.0 2.9e-4;
    m "North Carolina" 0.083 78_000.0 165.0 3.1e-4;
    m "Virginia" 0.090 92_000.0 230.0 2.4e-4;
    m "Florida" 0.104 75_000.0 195.0 3.0e-4;
    m "New York" 0.163 98_000.0 320.0 2.2e-4;
    m "New Jersey" 0.143 95_000.0 290.0 2.3e-4;
    m "Massachusetts" 0.146 96_000.0 300.0 2.4e-4;
    m "California" 0.131 102_000.0 310.0 2.3e-4;
    m "Colorado" 0.094 83_000.0 185.0 3.0e-4;
    m "Arizona" 0.097 79_000.0 175.0 3.1e-4;
    m "Nevada" 0.112 77_000.0 180.0 3.2e-4;
    m "Ohio" 0.093 76_000.0 160.0 3.2e-4;
  |]

let world_markets =
  [|
    m "US East" 0.110 95_000.0 260.0 2.4e-4;
    m "US Central" 0.085 82_000.0 180.0 2.9e-4;
    m "US West" 0.120 100_000.0 290.0 2.4e-4;
    m "Canada" 0.080 78_000.0 200.0 2.8e-4;
    m "Brazil" 0.160 55_000.0 340.0 6.0e-4;
    m "UK" 0.170 85_000.0 330.0 2.6e-4;
    m "Germany" 0.180 88_000.0 310.0 2.6e-4;
    m "Netherlands" 0.150 84_000.0 290.0 2.5e-4;
    m "Poland" 0.130 45_000.0 190.0 3.4e-4;
    m "India" 0.100 28_000.0 150.0 5.5e-4;
    m "Singapore" 0.140 70_000.0 320.0 4.0e-4;
    m "Japan" 0.200 90_000.0 380.0 3.8e-4;
    m "Hong Kong" 0.150 72_000.0 350.0 4.2e-4;
    m "Australia" 0.190 86_000.0 330.0 5.0e-4;
  |]

let find name =
  let all = Array.append us_markets world_markets in
  Array.to_list all |> List.find_opt (fun mk -> mk.market = name)

let volume_segments ~capacity ~per_server =
  let cap = float_of_int (max capacity 3) in
  let tranche = cap /. 3.0 in
  [
    { Lp.Piecewise.width = tranche; unit_cost = per_server };
    { Lp.Piecewise.width = tranche; unit_cost = per_server *. 0.85 };
    (* widen the last tranche slightly so rounding never undersizes *)
    { Lp.Piecewise.width = tranche +. 3.0; unit_cost = per_server *. 0.70 };
  ]

let vpn_monthly ~latency_ms = 150.0 +. (25.0 *. latency_ms)
