type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next_int64 t) land max_int in
  create seed

let float t =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)

let range t lo hi = lo +. (float t *. (hi -. lo))

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t =
  let u1 = Float.max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))
