(** The Enterprise1 case study: a multinational with 67 data centers, 1070
    servers, ~190 application groups consolidating into 10 targets (paper
    Table II, Figs. 2-3), with sites priced across world markets. *)

let config ?(scale = 1.0) () =
  Synth.scale
    {
      Synth.default with
      Synth.name = "enterprise1";
      seed = 1001;
      n_groups = 190;
      n_current = 67;
      n_targets = 10;
      total_servers = 1070;
      markets = Reference_costs.world_markets;
    }
    scale

let asis ?scale () = Synth.generate (config ?scale ())
