(** Deterministic pseudo-random numbers (splitmix64).

    Dataset synthesis must be reproducible across OCaml versions and runs,
    so we carry our own generator instead of [Stdlib.Random]. *)

type t

val create : int -> t

(** [split t] derives an independently-seeded child stream; drawing from the
    child does not disturb the parent sequence. *)
val split : t -> t

val next_int64 : t -> int64

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [int t n] is uniform in [0, n); requires n > 0. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi). *)
val range : t -> float -> float -> float

val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

(** Standard normal via Box-Muller. *)
val gaussian : t -> float

(** [lognormal t ~mu ~sigma] is exp(N(mu, sigma)). *)
val lognormal : t -> mu:float -> sigma:float -> float
