(** The Florida state-government study (paper Table II): 43 agency data
    centers and 3907 servers consolidating into 10 targets.  The paper
    borrows Enterprise1's group/server distributions because the Gartner
    study omits them; we do the same, with US-market pricing. *)

let config ?(scale = 1.0) () =
  Synth.scale
    {
      Synth.default with
      Synth.name = "florida";
      seed = 2002;
      n_groups = 190;
      n_current = 43;
      n_targets = 10;
      total_servers = 3907;
      markets = Reference_costs.us_markets;
    }
    scale

let asis ?scale () = Synth.generate (config ?scale ())
