(** The US Federal consolidation program (paper Table II): 2094 data
    centers, 42800 servers, ~1900 application groups (ten times Enterprise1,
    as the paper assumes) consolidating into 100 targets.

    Generate at [scale] < 1 to fit the bundled MILP engine; the full-size
    estate is still useful for dataset statistics (bench experiment E0). *)

let config ?(scale = 1.0) () =
  Synth.scale
    {
      Synth.default with
      Synth.name = "federal";
      seed = 3003;
      n_groups = 1900;
      n_current = 2094;
      n_targets = 100;
      total_servers = 42800;
      markets = Reference_costs.us_markets;
    }
    scale

let asis ?scale () = Synth.generate (config ?scale ())
