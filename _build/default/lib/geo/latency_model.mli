(** Distance-to-latency conversion and latency matrices.

    Light in fibre covers roughly 200 km per millisecond one way; round-trip
    latency is therefore about [distance_km / 100] ms plus a fixed
    processing/queueing base. *)

(** [rtt_ms ?base_ms distance_km] estimates the round-trip time for a
    one-way fibre distance in km. *)
val rtt_ms : ?base_ms:float -> float -> float

(** [matrix ~dcs ~users] is the [n_dcs x n_users] RTT matrix. *)
val matrix :
  ?base_ms:float -> dcs:Location.t array -> users:Location.t array -> unit ->
  float array array

(** [average ~weights row] is the user-weighted average latency of one DC
    row; raises [Invalid_argument] on length mismatch, returns 0 when all
    weights are zero. *)
val average : weights:float array -> float array -> float
