type t = { name : string; lat : float; lon : float }

let v ~name ~lat ~lon = { name; lat; lon }

let earth_radius_km = 6371.0
let rad d = d *. Float.pi /. 180.0

let distance_km a b =
  let dlat = rad (b.lat -. a.lat) and dlon = rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad a.lat) *. cos (rad b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. asin (Float.min 1.0 (sqrt h))

let pp ppf t = Fmt.pf ppf "%s (%.2f, %.2f)" t.name t.lat t.lon
