lib/geo/latency_model.mli: Location
