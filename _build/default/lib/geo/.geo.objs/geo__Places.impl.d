lib/geo/places.ml: Array List Location
