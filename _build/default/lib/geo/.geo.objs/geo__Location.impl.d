lib/geo/location.ml: Float Fmt
