lib/geo/topology.ml: Array
