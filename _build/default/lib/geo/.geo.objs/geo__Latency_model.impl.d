lib/geo/latency_model.ml: Array Location
