lib/geo/location.mli: Fmt
