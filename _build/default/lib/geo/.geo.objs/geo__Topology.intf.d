lib/geo/topology.mli:
