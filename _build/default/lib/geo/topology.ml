let paper_classes ?(near_ms = 5.0) ?(far_ms = 20.0) ?(balanced_ms = 10.0)
    ~n_dcs ~n_users () =
  if n_dcs <= 0 || n_users <= 0 then invalid_arg "Topology.paper_classes";
  let classes = Array.init n_dcs (fun j -> j mod (n_users + 1)) in
  let lat =
    Array.init n_dcs (fun j ->
        Array.init n_users (fun r ->
            if classes.(j) = n_users then balanced_ms
            else if classes.(j) = r then near_ms
            else far_ms))
  in
  (lat, classes)

let line ?(exponent = 1.0) ~n ~base_ms ~ms_per_hop ~user_positions () =
  if n <= 0 then invalid_arg "Topology.line";
  Array.init n (fun j ->
      Array.map
        (fun u ->
          base_ms +. (ms_per_hop *. (float_of_int (abs (j - u)) ** exponent)))
        user_positions)
