(** Geographic points and great-circle distances. *)

type t = { name : string; lat : float; lon : float }

val v : name:string -> lat:float -> lon:float -> t

(** Great-circle (haversine) distance in kilometres. *)
val distance_km : t -> t -> float

val pp : t Fmt.t
