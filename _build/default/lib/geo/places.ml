(** A reference gazetteer of metro areas used by the dataset synthesizers.

    Coordinates are approximate city centers; [region] follows the paper's
    Fig. 2 continental breakdown. *)

type region = North_america | South_america | Europe | Asia | Oceania

let region_name = function
  | North_america -> "North America"
  | South_america -> "South America"
  | Europe -> "Europe"
  | Asia -> "Asia"
  | Oceania -> "Oceania"

type place = { loc : Location.t; region : region }

let p name lat lon region = { loc = Location.v ~name ~lat ~lon; region }

let all =
  [|
    p "New York" 40.71 (-74.01) North_america;
    p "Chicago" 41.88 (-87.63) North_america;
    p "Dallas" 32.78 (-96.80) North_america;
    p "Los Angeles" 34.05 (-118.24) North_america;
    p "Seattle" 47.61 (-122.33) North_america;
    p "Atlanta" 33.75 (-84.39) North_america;
    p "Miami" 25.76 (-80.19) North_america;
    p "Denver" 39.74 (-104.99) North_america;
    p "Toronto" 43.65 (-79.38) North_america;
    p "Mexico City" 19.43 (-99.13) North_america;
    p "Sao Paulo" (-23.55) (-46.63) South_america;
    p "Buenos Aires" (-34.60) (-58.38) South_america;
    p "Santiago" (-33.45) (-70.67) South_america;
    p "Bogota" 4.71 (-74.07) South_america;
    p "London" 51.51 (-0.13) Europe;
    p "Frankfurt" 50.11 8.68 Europe;
    p "Paris" 48.86 2.35 Europe;
    p "Amsterdam" 52.37 4.90 Europe;
    p "Madrid" 40.42 (-3.70) Europe;
    p "Milan" 45.46 9.19 Europe;
    p "Stockholm" 59.33 18.07 Europe;
    p "Warsaw" 52.23 21.01 Europe;
    p "Mumbai" 19.08 72.88 Asia;
    p "Pune" 18.52 73.86 Asia;
    p "Singapore" 1.35 103.82 Asia;
    p "Tokyo" 35.68 139.65 Asia;
    p "Hong Kong" 22.32 114.17 Asia;
    p "Shanghai" 31.23 121.47 Asia;
    p "Seoul" 37.57 126.98 Asia;
    p "Sydney" (-33.87) 151.21 Oceania;
    p "Melbourne" (-37.81) 144.96 Oceania;
    p "Auckland" (-36.85) 174.76 Oceania;
  |]

let in_region r =
  Array.to_list all |> List.filter (fun pl -> pl.region = r)

let find name =
  Array.to_list all
  |> List.find_opt (fun pl -> pl.loc.Location.name = name)
