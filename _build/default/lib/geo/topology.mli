(** Synthetic latency topologies matching the paper's evaluation setup.

    Section VI-B: four client locations; data centers fall in five classes —
    close to exactly one client location (5 ms there, 20 ms to the rest) or
    balanced (10 ms to all four).  Section VI-D uses a line of ten locations
    with latencies and space costs increasing with the location index. *)

(** [paper_classes ~n_dcs ~n_users ()] assigns DCs round-robin over the
    [n_users + 1] classes and returns the [n_dcs x n_users] latency matrix
    together with each DC's class ([n_users] = balanced). *)
val paper_classes :
  ?near_ms:float -> ?far_ms:float -> ?balanced_ms:float -> n_dcs:int ->
  n_users:int -> unit -> float array array * int array

(** [line ~n ~base_ms ~ms_per_hop ~user_positions] places [n] DCs at
    positions [0..n-1] on a line and users at the given positions; latency
    is [base_ms + ms_per_hop * |dc - user| ^ exponent].  An [exponent]
    above 1 (the paper's parameter studies behave like ~2) makes latency
    convex in distance, so mid-line placements genuinely lower the mean
    latency of users split across both ends. *)
val line :
  ?exponent:float -> n:int -> base_ms:float -> ms_per_hop:float ->
  user_positions:int array -> unit -> float array array
