let rtt_ms ?(base_ms = 1.0) distance_km = base_ms +. (distance_km /. 100.0)

let matrix ?base_ms ~dcs ~users () =
  Array.map
    (fun dc ->
      Array.map (fun u -> rtt_ms ?base_ms (Location.distance_km dc u)) users)
    dcs

let average ~weights row =
  if Array.length weights <> Array.length row then
    invalid_arg "Latency_model.average: length mismatch";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri (fun i w -> acc := !acc +. (w *. row.(i))) weights;
    !acc /. total
  end
