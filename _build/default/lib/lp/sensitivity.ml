let shadow_prices (_ : Simplex.input) (result : Simplex.result) =
  Array.mapi (fun i y -> (i, y)) result.Simplex.duals

let row_activity input x i =
  let terms, _, _ = input.Simplex.rows.(i) in
  Array.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms

let binding_rows ?(tol = 1e-6) input result =
  let x = result.Simplex.x in
  List.init (Array.length input.Simplex.rows) Fun.id
  |> List.filter (fun i ->
         let _, sense, rhs = input.Simplex.rows.(i) in
         let v = row_activity input x i in
         let scale = 1.0 +. Float.abs rhs in
         match sense with
         | Model.Eq -> true
         | Model.Le | Model.Ge -> Float.abs (v -. rhs) <= tol *. scale)

let improving_rhs ?(tol = 1e-6) input result =
  binding_rows ~tol input result
  |> List.filter_map (fun i ->
         let y = result.Simplex.duals.(i) in
         if Float.abs y > tol then Some (i, y) else None)
  |> List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
