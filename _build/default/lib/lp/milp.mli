(** Mixed-integer linear programming by LP-based branch-and-bound.

    The solver runs best-bound branch-and-bound over the bounded-variable
    simplex of {!Simplex}.  A dive-and-fix heuristic seeds the incumbent at
    the root and serves as the fallback when node or time budgets run out,
    so a feasible plan is almost always returned together with the LP lower
    bound and the resulting optimality gap. *)

type options = {
  node_limit : int;        (** maximum branch-and-bound nodes (default 5000) *)
  time_limit : float;      (** CPU-seconds budget, [infinity] = none *)
  gap_tol : float;         (** stop when relative gap falls below this *)
  int_tol : float;         (** integrality tolerance on LP values *)
  dive_first : bool;       (** seed the incumbent by diving at the root *)
  log : bool;              (** emit progress on the [lp.milp] log source *)
}

val default_options : options

type result = {
  status : Status.t;
  x : float array;         (** best integer point found (empty if none) *)
  obj : float;             (** its objective, user direction *)
  bound : float;           (** proven bound on the optimum, user direction *)
  gap : float;             (** relative gap between [obj] and [bound] *)
  nodes : int;             (** branch-and-bound nodes explored *)
  lp_iterations : int;     (** total simplex iterations *)
}

(** [solve m] solves the model, honouring integrality marks on variables. *)
val solve : ?options:options -> Model.t -> result

(** [relax m] solves the LP relaxation only. *)
val relax : ?max_iters:int -> Model.t -> Simplex.result

(** [integral ?tol m x] is true when all integer-marked variables of [m]
    take integer values in [x]. *)
val integral : ?tol:float -> Model.t -> float array -> bool
