(** Two-phase primal simplex for linear programs with bounded variables.

    The solver works on a dense tableau and supports variables resting at
    either bound (so binary upper bounds cost no extra rows), equality /
    inequality rows (slacks are added internally), Dantzig pricing with a
    Bland anti-cycling fallback, and produces a dual certificate that
    {!check_certificate} can verify independently. *)

type input = {
  nvars : int;
  lo : float array;     (** length [nvars]; [neg_infinity] allowed *)
  hi : float array;     (** length [nvars]; [infinity] allowed *)
  obj : float array;    (** length [nvars] *)
  obj_const : float;
  minimize : bool;
  rows : ((int * float) array * Model.sense * float) array;
      (** sparse rows: (terms, sense, rhs) *)
}

type result = {
  status : Status.t;
  x : float array;           (** structural variable values, length [nvars] *)
  obj_value : float;         (** in the user's optimization direction *)
  duals : float array;       (** one multiplier per row, min convention *)
  reduced_costs : float array;  (** per structural variable, min convention *)
  iterations : int;
}

(** [of_model m] compiles a {!Model.t}, ignoring integrality marks. *)
val of_model : Model.t -> input

val solve : ?max_iters:int -> input -> result

(** [check_certificate input result] re-verifies, from scratch, that
    [result] is a valid optimum of [input]: primal feasibility, the sign
    conditions on reduced costs, and the strong-duality identity.  Returns
    error strings; empty means the certificate holds.  Only meaningful when
    [result.status = Optimal]. *)
val check_certificate : ?tol:float -> input -> result -> string list

(** [feasible ?tol input x] checks bounds and rows at the point [x]. *)
val feasible : ?tol:float -> input -> float array -> bool
