(** Dual-based sensitivity analysis on a solved LP.

    The simplex result carries one multiplier per row; for a minimization
    these are the marginal objective change per unit of right-hand side —
    shadow prices.  These helpers extract them in interpreted form. *)

(** [shadow_prices input result] pairs each row index with its multiplier
    (minimization convention: a negative price on a [<=] row means relaxing
    the row lowers the optimum). *)
val shadow_prices : Simplex.input -> Simplex.result -> (int * float) array

(** [binding_rows ?tol input result] lists rows satisfied with equality at
    the optimum — the constraints that actually shape the solution. *)
val binding_rows : ?tol:float -> Simplex.input -> Simplex.result -> int list

(** [improving_rhs ?tol input result] keeps only the binding rows whose
    shadow price is non-negligible, sorted by how much one unit of slack
    would improve the objective (largest first). *)
val improving_rhs :
  ?tol:float -> Simplex.input -> Simplex.result -> (int * float) list
