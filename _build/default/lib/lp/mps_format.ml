(** Writer for the (free-form) MPS format, as a second interchange format
    next to {!Lp_format}. *)

let row_name i (c : Model.constr) =
  let s = Lp_format.sanitize_name c.Model.cname in
  if s = "" then Printf.sprintf "c%d" i else s

let var_name (v : Model.var) =
  let s = Lp_format.sanitize_name v.Model.name in
  if s = "" then Printf.sprintf "x%d" v.Model.id else s

let write_model ppf m =
  let vs = Model.vars m in
  let cs = Model.constrs m in
  Format.fprintf ppf "NAME %s\n" (Lp_format.sanitize_name (Model.name m));
  if not (Model.minimize m) then Format.fprintf ppf "OBJSENSE\n MAX\n";
  Format.fprintf ppf "ROWS\n N obj\n";
  Array.iteri
    (fun i c ->
      let k =
        match c.Model.sense with Model.Le -> 'L' | Model.Ge -> 'G' | Model.Eq -> 'E'
      in
      Format.fprintf ppf " %c %s\n" k (row_name i c))
    cs;
  (* Column-major coefficients. *)
  let cols = Array.make (Array.length vs) [] in
  Array.iteri
    (fun i c ->
      Array.iter
        (fun (id, coeff) -> cols.(id) <- (row_name i c, coeff) :: cols.(id))
        (Model.Linexpr.terms c.Model.expr))
    cs;
  Array.iter
    (fun (id, coeff) -> cols.(id) <- ("obj", coeff) :: cols.(id))
    (Model.Linexpr.terms (Model.objective m));
  Format.fprintf ppf "COLUMNS\n";
  let in_int = ref false in
  Array.iter
    (fun (v : Model.var) ->
      if v.Model.integer && not !in_int then begin
        Format.fprintf ppf " MARKER M%d 'MARKER' 'INTORG'\n" v.Model.id;
        in_int := true
      end
      else if (not v.Model.integer) && !in_int then begin
        Format.fprintf ppf " MARKER M%d 'MARKER' 'INTEND'\n" v.Model.id;
        in_int := false
      end;
      List.iter
        (fun (row, coeff) ->
          Format.fprintf ppf " %s %s %.12g\n" (var_name v) row coeff)
        (List.rev cols.(v.Model.id)))
    vs;
  if !in_int then Format.fprintf ppf " MARKER MEND 'MARKER' 'INTEND'\n";
  Format.fprintf ppf "RHS\n";
  Array.iteri
    (fun i c ->
      if c.Model.rhs <> 0.0 then
        Format.fprintf ppf " rhs %s %.12g\n" (row_name i c) c.Model.rhs)
    cs;
  Format.fprintf ppf "BOUNDS\n";
  Array.iter
    (fun (v : Model.var) ->
      let name = var_name v in
      let lo = v.Model.lo and hi = v.Model.hi in
      if lo = 0.0 && hi = infinity then ()
      else if lo = neg_infinity && hi = infinity then
        Format.fprintf ppf " FR BND %s\n" name
      else if lo = hi then Format.fprintf ppf " FX BND %s %.12g\n" name lo
      else begin
        if lo <> 0.0 then
          if lo = neg_infinity then Format.fprintf ppf " MI BND %s\n" name
          else Format.fprintf ppf " LO BND %s %.12g\n" name lo;
        if hi <> infinity then Format.fprintf ppf " UP BND %s %.12g\n" name hi
      end)
    vs;
  Format.fprintf ppf "ENDATA\n"

let model_to_string m =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write_model ppf m;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let write_model_file path m =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try
     write_model ppf m;
     Format.pp_print_flush ppf ()
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
