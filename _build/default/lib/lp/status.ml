(** Termination status of an LP or MILP solve. *)

type t =
  | Optimal          (** proven optimal within tolerances *)
  | Infeasible       (** no feasible point exists *)
  | Unbounded        (** objective unbounded in the optimization direction *)
  | Iteration_limit  (** simplex iteration budget exhausted *)
  | Node_limit       (** branch-and-bound node budget exhausted *)
  | Time_limit       (** wall-clock budget exhausted *)
  | Feasible         (** a feasible (integer) point found, optimality not proven *)

let to_string = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Iteration_limit -> "iteration-limit"
  | Node_limit -> "node-limit"
  | Time_limit -> "time-limit"
  | Feasible -> "feasible"

let pp ppf s = Fmt.string ppf (to_string s)

let is_ok = function
  | Optimal | Feasible -> true
  | Infeasible | Unbounded | Iteration_limit | Node_limit | Time_limit -> false
