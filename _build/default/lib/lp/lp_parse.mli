(** Parser for the subset of the CPLEX LP file format written by
    {!Lp_format}.

    Supported sections: [Minimize]/[Maximize], [Subject To] (and the [st],
    [s.t.], [such that] spellings), [Bounds], [Binaries], [Generals],
    [End]; [\ ] comments.  Variables appearing only in later sections are
    created with default bounds. *)

exception Parse_error of string

(** [model_of_string s] parses [s]; raises {!Parse_error} on malformed
    input. *)
val model_of_string : ?name:string -> string -> Model.t

val read_model_file : string -> Model.t
