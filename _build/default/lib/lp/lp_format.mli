(** Writer for the CPLEX LP file format (and a plain solution-file format).

    eTransform's architecture (paper Fig. 5) materializes the optimization
    problem as an LP file handed to the engine and reads back a solution
    file; these writers — together with {!Lp_parse} — reproduce that
    interface. *)

(** [write_model ppf m] prints [m] in CPLEX LP format:
    objective, [Subject To], [Bounds], [Generals]/[Binaries], [End]. *)
val write_model : Format.formatter -> Model.t -> unit

val model_to_string : Model.t -> string
val write_model_file : string -> Model.t -> unit

(** [write_solution ppf m ~status ~obj x] prints a simple
    [name = value] solution file for non-zero variables. *)
val write_solution :
  Format.formatter -> Model.t -> status:Status.t -> obj:float -> float array -> unit

val solution_to_string :
  Model.t -> status:Status.t -> obj:float -> float array -> string

(** [sanitize_name s] rewrites [s] into an identifier valid in LP files
    (CPLEX rejects names starting with a digit or [e], and operators). *)
val sanitize_name : string -> string
