type input = {
  nvars : int;
  lo : float array;
  hi : float array;
  obj : float array;
  obj_const : float;
  minimize : bool;
  rows : ((int * float) array * Model.sense * float) array;
}

type result = {
  status : Status.t;
  x : float array;
  obj_value : float;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
}

let of_model m =
  let vs = Model.vars m in
  let nvars = Array.length vs in
  let lo = Array.map (fun (v : Model.var) -> v.Model.lo) vs in
  let hi = Array.map (fun (v : Model.var) -> v.Model.hi) vs in
  let obj = Array.make nvars 0.0 in
  Array.iter
    (fun (id, c) -> obj.(id) <- obj.(id) +. c)
    (Model.Linexpr.terms (Model.objective m));
  let rows =
    Array.map
      (fun (c : Model.constr) ->
        (Model.Linexpr.terms c.Model.expr, c.Model.sense, c.Model.rhs))
      (Model.constrs m)
  in
  {
    nvars;
    lo;
    hi;
    obj;
    obj_const = Model.Linexpr.const_part (Model.objective m);
    minimize = Model.minimize m;
    rows;
  }

(* Column status.  A nonbasic variable rests at one of its bounds (or at 0
   when free); a basic variable's value lives in [xb] of its row. *)
type cstat = Basic | At_lower | At_upper | Free_nb

let tol_piv = 1e-9
let tol_cost = 1e-7
let tol_feas = 1e-7

let feasible ?(tol = 1e-6) input x =
  let ok = ref true in
  for j = 0 to input.nvars - 1 do
    if x.(j) < input.lo.(j) -. tol || x.(j) > input.hi.(j) +. tol then ok := false
  done;
  Array.iter
    (fun (terms, sense, rhs) ->
      let v = Array.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
      let scale = 1.0 +. Float.abs rhs in
      (match sense with
      | Model.Le -> if v > rhs +. (tol *. scale) then ok := false
      | Model.Ge -> if v < rhs -. (tol *. scale) then ok := false
      | Model.Eq -> if Float.abs (v -. rhs) > tol *. scale then ok := false))
    input.rows;
  !ok

(* Internal mutable solver state over the dense tableau. *)
type state = {
  m : int;                  (* rows *)
  ntot : int;               (* structural + slack + artificial columns *)
  art0 : int;               (* first artificial column *)
  slo : float array;        (* bounds over all columns *)
  shi : float array;
  t : float array array;    (* m x ntot, equals B^-1 A *)
  xb : float array;         (* value of the basic variable of each row *)
  basis : int array;
  stat : cstat array;
  vnb : float array;        (* resting value of nonbasic columns *)
  z : float array;          (* reduced costs of the current phase *)
  sgn : float array;        (* artificial sign per row, for dual recovery *)
  mutable iters : int;
  mutable degen : int;      (* consecutive degenerate steps; drives Bland *)
}

let price st =
  (* Dantzig pricing; after a degeneracy streak fall back to Bland's rule,
     which guarantees termination. *)
  let bland = st.degen > 60 in
  let best = ref (-1) and best_score = ref tol_cost and best_dir = ref 1.0 in
  (try
     for j = 0 to st.ntot - 1 do
       if st.slo.(j) < st.shi.(j) then begin
         let zj = st.z.(j) in
         let dir =
           match st.stat.(j) with
           | Basic -> 0.0
           | At_lower -> if zj < -.tol_cost then 1.0 else 0.0
           | At_upper -> if zj > tol_cost then -1.0 else 0.0
           | Free_nb ->
               if zj < -.tol_cost then 1.0
               else if zj > tol_cost then -1.0
               else 0.0
         in
         if dir <> 0.0 then
           if bland then begin
             best := j;
             best_dir := dir;
             raise Exit
           end
           else begin
             let score = Float.abs zj in
             if score > !best_score then begin
               best := j;
               best_score := score;
               best_dir := dir
             end
           end
       end
     done
   with Exit -> ());
  if !best < 0 then None else Some (!best, !best_dir)

(* Ratio test: how far can column [q] move in direction [d] before a basic
   variable hits a bound or [q] reaches its opposite bound?  Returns
   (step, blocking row or -1, whether the blocker stops at its upper bound). *)
let ratio_test st q d =
  let t_best = ref (st.shi.(q) -. st.slo.(q)) in
  (* free columns have an infinite flip distance *)
  if Float.is_nan !t_best then t_best := infinity;
  let row = ref (-1) and to_upper = ref false and piv_best = ref 0.0 in
  for i = 0 to st.m - 1 do
    let w = st.t.(i).(q) in
    let rate = -.d *. w in
    if Float.abs w > tol_piv then begin
      let bi = st.basis.(i) in
      if rate < -.tol_piv && st.slo.(bi) > neg_infinity then begin
        let ti = (st.xb.(i) -. st.slo.(bi)) /. -.rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := false;
          piv_best := Float.abs w
        end
      end
      else if rate > tol_piv && st.shi.(bi) < infinity then begin
        let ti = (st.shi.(bi) -. st.xb.(i)) /. rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := true;
          piv_best := Float.abs w
        end
      end
    end
  done;
  (!t_best, !row, !to_upper)

(* One simplex step for entering column [q] moving in direction [d].
   Returns [false] when the problem is unbounded in this direction. *)
let step st q d =
  let tstep, lrow, to_upper = ratio_test st q d in
  if tstep = infinity then false
  else begin
    st.iters <- st.iters + 1;
    if tstep < 1e-9 then st.degen <- st.degen + 1 else st.degen <- 0;
    (* Move every basic variable by its rate. *)
    for i = 0 to st.m - 1 do
      st.xb.(i) <- st.xb.(i) -. (d *. st.t.(i).(q) *. tstep)
    done;
    if lrow < 0 then begin
      (* Bound flip: q travels to its opposite bound, basis unchanged. *)
      st.vnb.(q) <- st.vnb.(q) +. (d *. tstep);
      st.stat.(q) <- (if d > 0.0 then At_upper else At_lower)
    end
    else begin
      let xq = st.vnb.(q) +. (d *. tstep) in
      let leaving = st.basis.(lrow) in
      if to_upper then begin
        st.vnb.(leaving) <- st.shi.(leaving);
        st.stat.(leaving) <- At_upper
      end
      else begin
        st.vnb.(leaving) <- st.slo.(leaving);
        st.stat.(leaving) <- At_lower
      end;
      st.basis.(lrow) <- q;
      st.stat.(q) <- Basic;
      st.xb.(lrow) <- xq;
      (* Gauss-Jordan elimination on the pivot column.  These loops carry
         essentially all of the solver's flops, hence the unsafe accesses
         (bounds are loop-invariant by construction). *)
      let prow = st.t.(lrow) in
      let piv = prow.(q) in
      let inv = 1.0 /. piv in
      for j = 0 to st.ntot - 1 do
        Array.unsafe_set prow j (Array.unsafe_get prow j *. inv)
      done;
      prow.(q) <- 1.0;
      for i = 0 to st.m - 1 do
        if i <> lrow then begin
          let f = st.t.(i).(q) in
          if f <> 0.0 then begin
            let ri = st.t.(i) in
            for j = 0 to st.ntot - 1 do
              Array.unsafe_set ri j
                (Array.unsafe_get ri j -. (f *. Array.unsafe_get prow j))
            done;
            ri.(q) <- 0.0
          end
        end
      done;
      let f = st.z.(q) in
      if f <> 0.0 then begin
        let z = st.z in
        for j = 0 to st.ntot - 1 do
          Array.unsafe_set z j
            (Array.unsafe_get z j -. (f *. Array.unsafe_get prow j))
        done;
        st.z.(q) <- 0.0
      end
    end;
    true
  end

(* Recompute the reduced-cost row for cost vector [c] (length ntot). *)
let reset_reduced_costs st c =
  for j = 0 to st.ntot - 1 do
    st.z.(j) <- c.(j)
  done;
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0.0 then begin
      let ri = st.t.(i) and z = st.z in
      for j = 0 to st.ntot - 1 do
        Array.unsafe_set z j
          (Array.unsafe_get z j -. (cb *. Array.unsafe_get ri j))
      done
    end
  done;
  for i = 0 to st.m - 1 do
    st.z.(st.basis.(i)) <- 0.0
  done

let empty_result status =
  { status; x = [||]; obj_value = nan; duals = [||]; reduced_costs = [||];
    iterations = 0 }

(* Columns pinned by branching or diving ([lo = hi]) are substituted into
   the right-hand sides before the tableau is built; after a dive's first
   batch fix this shrinks the working problem by an order of magnitude. *)
let eliminate_fixed input =
  let n = input.nvars in
  let active = ref 0 in
  let fixed = Array.make n false in
  for j = 0 to n - 1 do
    if input.hi.(j) -. input.lo.(j) <= 1e-12 then fixed.(j) <- true
    else incr active
  done;
  if !active = n then None
  else begin
    let remap = Array.make n (-1) in
    let back = Array.make !active 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if not fixed.(j) then begin
        remap.(j) <- !k;
        back.(!k) <- j;
        incr k
      end
    done;
    let obj_const = ref input.obj_const in
    for j = 0 to n - 1 do
      if fixed.(j) then obj_const := !obj_const +. (input.obj.(j) *. input.lo.(j))
    done;
    let rows =
      Array.map
        (fun (terms, sense, rhs) ->
          let rhs = ref rhs in
          let kept =
            Array.to_list terms
            |> List.filter_map (fun (j, c) ->
                   if fixed.(j) then begin
                     rhs := !rhs -. (c *. input.lo.(j));
                     None
                   end
                   else Some (remap.(j), c))
          in
          (Array.of_list kept, sense, !rhs))
        input.rows
    in
    let reduced =
      {
        nvars = !active;
        lo = Array.map (fun j -> input.lo.(j)) back;
        hi = Array.map (fun j -> input.hi.(j)) back;
        obj = Array.map (fun j -> input.obj.(j)) back;
        obj_const = !obj_const;
        minimize = input.minimize;
        rows;
      }
    in
    Some (reduced, back)
  end

let rec solve ?max_iters input =
  let m = Array.length input.rows in
  let n = input.nvars in
  (* Branching can cross bounds; such boxes are empty, not "solved". *)
  let crossed = ref false in
  for j = 0 to n - 1 do
    if input.lo.(j) > input.hi.(j) +. 1e-11 then crossed := true
  done;
  if !crossed then empty_result Status.Infeasible
  else
  match eliminate_fixed input with
  | Some (reduced, back) ->
      let r = solve ?max_iters reduced in
      let x = Array.copy input.lo in
      let reduced_costs = Array.make n 0.0 in
      if Array.length r.x > 0 then
        Array.iteri (fun k j -> x.(j) <- r.x.(k)) back;
      if r.status = Status.Optimal then begin
        (* Reduced costs of fixed columns from the duals: c_j - y' A_j. *)
        let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
        for j = 0 to n - 1 do
          reduced_costs.(j) <- cmin j
        done;
        Array.iteri
          (fun i (terms, _, _) ->
            let y = r.duals.(i) in
            if y <> 0.0 then
              Array.iter
                (fun (j, c) ->
                  reduced_costs.(j) <- reduced_costs.(j) -. (y *. c))
                terms)
          input.rows;
        Array.iteri (fun k j -> reduced_costs.(j) <- r.reduced_costs.(k)) back
      end;
      {
        r with
        x = (if r.status = Status.Optimal then x else [||]);
        reduced_costs;
      }
  | None ->
  let nslack =
    Array.fold_left
      (fun a (_, s, _) -> match s with Model.Eq -> a | _ -> a + 1)
      0 input.rows
  in
  let art0 = n + nslack in
  let ntot = art0 + m in
  let max_iters =
    match max_iters with Some k -> k | None -> max 2000 (60 * (m + n))
  in
  let slo = Array.make ntot 0.0 and shi = Array.make ntot infinity in
  Array.blit input.lo 0 slo 0 n;
  Array.blit input.hi 0 shi 0 n;
  (* Dense constraint rows including slack columns. *)
  let t = Array.init m (fun _ -> Array.make ntot 0.0) in
  let rhs = Array.make m 0.0 in
  let next_slack = ref n in
  Array.iteri
    (fun i (terms, sense, r) ->
      Array.iter (fun (j, c) -> t.(i).(j) <- t.(i).(j) +. c) terms;
      (match sense with
      | Model.Le ->
          t.(i).(!next_slack) <- 1.0;
          incr next_slack
      | Model.Ge ->
          t.(i).(!next_slack) <- -1.0;
          incr next_slack
      | Model.Eq -> ());
      rhs.(i) <- r)
    input.rows;
  (* Initial nonbasic point: every column at its finite bound nearest 0. *)
  let stat = Array.make ntot At_lower in
  let vnb = Array.make ntot 0.0 in
  for j = 0 to art0 - 1 do
    if slo.(j) > neg_infinity then begin
      stat.(j) <- At_lower;
      vnb.(j) <- slo.(j)
    end
    else if shi.(j) < infinity then begin
      stat.(j) <- At_upper;
      vnb.(j) <- shi.(j)
    end
    else begin
      stat.(j) <- Free_nb;
      vnb.(j) <- 0.0
    end
  done;
  (* Artificial basis: row i holds artificial art0+i with value |residual|. *)
  let sgn = Array.make m 1.0 in
  let xb = Array.make m 0.0 in
  let basis = Array.init m (fun i -> art0 + i) in
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for j = 0 to art0 - 1 do
      if t.(i).(j) <> 0.0 then acc := !acc +. (t.(i).(j) *. vnb.(j))
    done;
    let resid = rhs.(i) -. !acc in
    let s = if resid >= 0.0 then 1.0 else -1.0 in
    sgn.(i) <- s;
    if s < 0.0 then
      for j = 0 to art0 - 1 do
        t.(i).(j) <- -.t.(i).(j)
      done;
    t.(i).(art0 + i) <- 1.0;
    xb.(i) <- Float.abs resid;
    stat.(art0 + i) <- Basic
  done;
  let st =
    { m; ntot; art0; slo; shi; t; xb; basis; stat; vnb; z = Array.make ntot 0.0;
      sgn; iters = 0; degen = 0 }
  in
  (* Internal costs are always minimization. *)
  let cost = Array.make ntot 0.0 in
  for j = 0 to n - 1 do
    cost.(j) <- (if input.minimize then input.obj.(j) else -.input.obj.(j))
  done;
  let phase1_cost = Array.make ntot 0.0 in
  for i = 0 to m - 1 do
    phase1_cost.(art0 + i) <- 1.0
  done;
  let run_phase c =
    reset_reduced_costs st c;
    let rec loop () =
      if st.iters >= max_iters then `Iters
      else
        match price st with
        | None -> `Done
        | Some (q, d) -> if step st q d then loop () else `Unbounded
    in
    loop ()
  in
  let finish status =
    let x = Array.make n 0.0 in
    for j = 0 to n - 1 do
      if st.stat.(j) <> Basic then x.(j) <- st.vnb.(j)
    done;
    for i = 0 to m - 1 do
      if st.basis.(i) < n then x.(st.basis.(i)) <- st.xb.(i)
    done;
    let obj_value =
      let a = ref input.obj_const in
      for j = 0 to n - 1 do
        a := !a +. (input.obj.(j) *. x.(j))
      done;
      !a
    in
    let duals = Array.make m 0.0 in
    let reduced = Array.make n 0.0 in
    if status = Status.Optimal then begin
      for i = 0 to m - 1 do
        duals.(i) <- -.st.z.(art0 + i) *. st.sgn.(i)
      done;
      for j = 0 to n - 1 do
        reduced.(j) <- st.z.(j)
      done
    end;
    { status; x; obj_value; duals; reduced_costs = reduced;
      iterations = st.iters }
  in
  match run_phase phase1_cost with
  | `Iters -> finish Status.Iteration_limit
  | `Unbounded ->
      (* Phase-1 objective is bounded below by zero; reaching here means a
         numerical breakdown, which we surface as an iteration failure. *)
      finish Status.Iteration_limit
  | `Done ->
      let p1 = ref 0.0 in
      for i = 0 to m - 1 do
        if st.basis.(i) >= art0 then p1 := !p1 +. st.xb.(i)
      done;
      for j = art0 to ntot - 1 do
        if st.stat.(j) <> Basic then p1 := !p1 +. st.vnb.(j)
      done;
      if !p1 > tol_feas *. float_of_int (1 + m) then finish Status.Infeasible
      else begin
        (* Pivot leftover artificials out of the basis where possible; rows
           where no structural pivot exists are redundant and keep a fixed
           zero-valued artificial. *)
        for i = 0 to m - 1 do
          if st.basis.(i) >= art0 then begin
            let q = ref (-1) in
            for j = 0 to art0 - 1 do
              if !q < 0 && st.stat.(j) <> Basic
                 && Float.abs st.t.(i).(j) > 1e-7
              then q := j
            done;
            match !q with
            | -1 -> ()
            | q ->
                let leaving = st.basis.(i) in
                st.vnb.(leaving) <- 0.0;
                st.stat.(leaving) <- At_lower;
                st.basis.(i) <- q;
                st.stat.(q) <- Basic;
                st.xb.(i) <- st.vnb.(q);
                let prow = st.t.(i) in
                let piv = prow.(q) in
                let inv = 1.0 /. piv in
                for j = 0 to st.ntot - 1 do
                  prow.(j) <- prow.(j) *. inv
                done;
                prow.(q) <- 1.0;
                for r = 0 to st.m - 1 do
                  if r <> i then begin
                    let f = st.t.(r).(q) in
                    if f <> 0.0 then begin
                      let rr = st.t.(r) in
                      for j = 0 to st.ntot - 1 do
                        rr.(j) <- rr.(j) -. (f *. prow.(j))
                      done;
                      rr.(q) <- 0.0
                    end
                  end
                done
          end
        done;
        (* Artificials may no longer move in phase 2. *)
        for j = art0 to ntot - 1 do
          st.slo.(j) <- 0.0;
          st.shi.(j) <- 0.0
        done;
        st.degen <- 0;
        match run_phase cost with
        | `Done -> finish Status.Optimal
        | `Unbounded -> finish Status.Unbounded
        | `Iters -> finish Status.Iteration_limit
      end

let check_certificate ?(tol = 1e-5) input result =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let n = input.nvars and m = Array.length input.rows in
  let x = result.x in
  if not (feasible ~tol input x) then err "primal point infeasible";
  (* Reduced costs recomputed from scratch in the minimization convention. *)
  let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
  let zhat = Array.init n cmin in
  Array.iteri
    (fun i (terms, _, _) ->
      let y = result.duals.(i) in
      if y <> 0.0 then
        Array.iter (fun (j, c) -> zhat.(j) <- zhat.(j) -. (y *. c)) terms)
    input.rows;
  let scale =
    1.0 +. Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 input.obj
  in
  let tolz = tol *. scale in
  for j = 0 to n - 1 do
    let at_lo = x.(j) <= input.lo.(j) +. tol in
    let at_hi = x.(j) >= input.hi.(j) -. tol in
    if (not at_lo) && not at_hi then begin
      if Float.abs zhat.(j) > tolz then
        err "interior variable %d has reduced cost %g" j zhat.(j)
    end
    else begin
      if at_lo && (not at_hi) && zhat.(j) < -.tolz then
        err "variable %d at lower bound has negative reduced cost %g" j zhat.(j);
      if at_hi && (not at_lo) && zhat.(j) > tolz then
        err "variable %d at upper bound has positive reduced cost %g" j zhat.(j)
    end
  done;
  (* Complementary slackness and dual sign conditions per row. *)
  for i = 0 to m - 1 do
    let terms, sense, rhs = input.rows.(i) in
    let v = Array.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
    let slack = rhs -. v in
    let y = result.duals.(i) in
    let rtol = tol *. (1.0 +. Float.abs rhs) in
    (match sense with
    | Model.Le ->
        if y > tolz then err "Le row %d has dual %g > 0" i y;
        if slack > rtol && Float.abs y > tolz then
          err "slack Le row %d has nonzero dual %g" i y
    | Model.Ge ->
        if y < -.tolz then err "Ge row %d has dual %g < 0" i y;
        if slack < -.rtol && Float.abs y > tolz then
          err "slack Ge row %d has nonzero dual %g" i y
    | Model.Eq -> ())
  done;
  List.rev !errs
