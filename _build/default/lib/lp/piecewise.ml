type segment = { width : float; unit_cost : float }

let total_width segs = List.fold_left (fun a s -> a +. s.width) 0.0 segs

let cost_at segs q =
  let rec go acc q = function
    | [] -> acc
    | s :: rest ->
        if q <= 0.0 then acc
        else
          let take = Float.min q s.width in
          go (acc +. (take *. s.unit_cost)) (q -. take) rest
  in
  go 0.0 q segs

let check_segments name segs =
  if segs = [] then invalid_arg (name ^ ": empty segment list");
  List.iter
    (fun s ->
      if s.width <= 0.0 then invalid_arg (name ^ ": non-positive segment width"))
    segs

let fills m ~name ~quantity segs =
  let fills =
    List.mapi
      (fun k s ->
        (Model.add_var m ~lo:0.0 ~hi:s.width (Printf.sprintf "%s_fill%d" name k), s))
      segs
  in
  let sum = Model.Linexpr.sum (List.map (fun (v, _) -> Model.Linexpr.var v) fills) in
  Model.add_eq m (name ^ "_link") (Model.Linexpr.sub sum quantity) 0.0;
  fills

let cost_of_fills fills =
  Model.Linexpr.sum
    (List.map (fun (v, s) -> Model.Linexpr.term s.unit_cost v) fills)

let convex_cost m ~name ~quantity segs =
  check_segments name segs;
  cost_of_fills (fills m ~name ~quantity segs)

let concave_cost m ~name ~quantity segs =
  check_segments name segs;
  let fs = Array.of_list (fills m ~name ~quantity segs) in
  (* Ordering binaries: z_k = 1 forces segment k-1 full and is required
     before segment k may hold anything.  Without them the LP would fill the
     cheapest (deepest) discount tier first. *)
  for k = 1 to Array.length fs - 1 do
    let fk, sk = fs.(k) and fk1, sk1 = fs.(k - 1) in
    let z = Model.add_var m ~binary:true (Printf.sprintf "%s_z%d" name k) in
    Model.add_le m
      (Printf.sprintf "%s_open%d" name k)
      (Model.Linexpr.sub (Model.Linexpr.var fk)
         (Model.Linexpr.term sk.width z))
      0.0;
    Model.add_ge m
      (Printf.sprintf "%s_full%d" name k)
      (Model.Linexpr.sub (Model.Linexpr.var fk1)
         (Model.Linexpr.term sk1.width z))
      0.0
  done;
  cost_of_fills (Array.to_list fs)

let fixed_charge m ~name ~quantity ~capacity ~fixed_cost =
  if capacity <= 0.0 then invalid_arg (name ^ ": non-positive capacity");
  let y = Model.add_var m ~binary:true (name ^ "_open") in
  Model.add_le m (name ^ "_cap")
    (Model.Linexpr.sub quantity (Model.Linexpr.term capacity y))
    0.0;
  (Model.Linexpr.term fixed_cost y, y)
