lib/lp/sensitivity.mli: Simplex
