lib/lp/lp_format.ml: Array Buffer Float Format List Model Printf Status String
