lib/lp/lp_format.mli: Format Model Status
