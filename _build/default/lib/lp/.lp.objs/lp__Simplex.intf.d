lib/lp/simplex.mli: Model Status
