lib/lp/lp_parse.mli: Model
