lib/lp/lp_parse.ml: Filename Fmt Hashtbl List Model Printf String
