lib/lp/status.ml: Fmt
