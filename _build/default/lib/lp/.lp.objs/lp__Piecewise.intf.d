lib/lp/piecewise.mli: Model
