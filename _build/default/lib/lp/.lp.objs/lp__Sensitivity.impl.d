lib/lp/sensitivity.ml: Array Float Fun List Model Simplex
