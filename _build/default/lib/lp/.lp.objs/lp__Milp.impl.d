lib/lp/milp.ml: Array Float Hashtbl List Logs Model Option Pqueue Simplex Status Sys
