lib/lp/mps_format.ml: Array Buffer Format List Lp_format Model Printf
