lib/lp/piecewise.ml: Array Float List Model Printf
