lib/lp/model.ml: Array Float Fmt Hashtbl List
