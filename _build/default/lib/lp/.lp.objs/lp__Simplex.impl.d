lib/lp/simplex.ml: Array Float Fmt List Model Status
