lib/lp/model.mli: Fmt
