lib/lp/pqueue.ml: Array
