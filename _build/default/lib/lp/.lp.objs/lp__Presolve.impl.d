lib/lp/presolve.ml: Array Float Fmt List Model
