(** Piecewise-linear cost encodings for LP/MILP models.

    These implement the step/ramp-function incorporation technique the paper
    credits to Schoomer (1964) and uses for economies of scale: volume
    discounts make the total-cost curve concave, which requires ordering
    binaries; convex curves and fixed opening charges are also provided. *)

type segment = {
  width : float;      (** capacity of this segment, > 0 *)
  unit_cost : float;  (** cost per unit within the segment *)
}

(** [concave_cost m ~name ~quantity segs] constrains [quantity] to be split
    across the segments in order (segment [k+1] may fill only once segment
    [k] is full, enforced with binaries) and returns the total-cost
    expression [sum_k unit_cost_k * fill_k].  Suitable for volume-discount
    (decreasing unit cost) pricing.  The segments bound the quantity by
    their total width. *)
val concave_cost :
  Model.t -> name:string -> quantity:Model.Linexpr.t -> segment list ->
  Model.Linexpr.t

(** [convex_cost] is the binary-free variant, valid when unit costs are
    non-decreasing (the LP then fills cheap segments first on its own). *)
val convex_cost :
  Model.t -> name:string -> quantity:Model.Linexpr.t -> segment list ->
  Model.Linexpr.t

(** [fixed_charge m ~name ~quantity ~capacity ~fixed_cost] adds an opening
    binary [y] with [quantity <= capacity * y] and returns the cost term
    [fixed_cost * y].  The binary is also returned for callers that want to
    attach further constraints (e.g. "data center is open"). *)
val fixed_charge :
  Model.t -> name:string -> quantity:Model.Linexpr.t -> capacity:float ->
  fixed_cost:float -> Model.Linexpr.t * Model.var

(** [total_width segs] and [cost_at segs q]: direct evaluation of the curve,
    used by plan evaluators and tests. [cost_at] fills segments in order. *)
val total_width : segment list -> float

val cost_at : segment list -> float -> float
