(** Light presolve passes over a {!Model.t}.

    The model is mutated in place (bounds only); rows are never removed, so
    variable ids remain stable for callers holding {!Model.var} handles. *)

(** [tighten m] derives tighter variable bounds from singleton rows
    (rows mentioning exactly one variable) and returns how many bounds
    changed.  Binary/integer variables additionally get their bounds
    rounded inward. *)
let tighten m =
  let changed = ref 0 in
  let vs = Model.vars m in
  Array.iter
    (fun (c : Model.constr) ->
      match Model.Linexpr.terms c.Model.expr with
      | [| (id, coeff) |] when coeff <> 0.0 ->
          let v = vs.(id) in
          let bound = c.Model.rhs /. coeff in
          let apply_le () =
            if bound < v.Model.hi -. 1e-12 then begin
              Model.set_bounds m v ~lo:v.Model.lo ~hi:bound;
              incr changed
            end
          and apply_ge () =
            if bound > v.Model.lo +. 1e-12 then begin
              Model.set_bounds m v ~lo:bound ~hi:v.Model.hi;
              incr changed
            end
          in
          (match (c.Model.sense, coeff > 0.0) with
          | Model.Le, true | Model.Ge, false -> apply_le ()
          | Model.Ge, true | Model.Le, false -> apply_ge ()
          | Model.Eq, _ ->
              if
                bound < v.Model.hi -. 1e-12 || bound > v.Model.lo +. 1e-12
              then begin
                Model.set_bounds m v ~lo:bound ~hi:bound;
                incr changed
              end)
      | _ -> ())
    (Model.constrs m);
  Array.iter
    (fun (v : Model.var) ->
      if v.Model.integer then begin
        let lo' = Float.ceil (v.Model.lo -. 1e-9)
        and hi' = Float.floor (v.Model.hi +. 1e-9) in
        if lo' > v.Model.lo +. 1e-12 || hi' < v.Model.hi -. 1e-12 then begin
          Model.set_bounds m v ~lo:lo' ~hi:hi';
          incr changed
        end
      end)
    vs;
  !changed

(** [diagnose m] combines {!Model.validate} with simple infeasibility
    screens (crossed bounds after integral rounding). *)
let diagnose m =
  let base = Model.validate m in
  let extra = ref [] in
  Array.iter
    (fun (v : Model.var) ->
      if v.Model.integer && Float.ceil (v.Model.lo -. 1e-9) > Float.floor (v.Model.hi +. 1e-9)
      then
        extra :=
          Fmt.str "integer variable %s has empty integral domain [%g, %g]"
            v.Model.name v.Model.lo v.Model.hi
          :: !extra)
    (Model.vars m);
  base @ List.rev !extra
