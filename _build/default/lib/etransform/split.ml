let size_budget ?(max_fraction = 0.9) asis =
  let biggest =
    Array.fold_left
      (fun a (d : Data_center.t) -> max a d.Data_center.capacity)
      1 asis.Asis.targets
  in
  max 1 (int_of_float (max_fraction *. float_of_int biggest))

let oversized ?max_fraction asis =
  let budget = size_budget ?max_fraction asis in
  Array.to_list asis.Asis.groups
  |> List.mapi (fun i g -> (i, g))
  |> List.filter_map (fun (i, (g : App_group.t)) ->
         if g.App_group.servers > budget then Some i else None)

let split_group budget (g : App_group.t) =
  let parts = (g.App_group.servers + budget - 1) / budget in
  let base = g.App_group.servers / parts and extra = g.App_group.servers mod parts in
  List.init parts (fun k ->
      let servers = base + (if k < extra then 1 else 0) in
      let share = float_of_int servers /. float_of_int g.App_group.servers in
      App_group.v ~latency:g.App_group.latency
        ?allowed_dcs:g.App_group.allowed_dcs
        ~name:(Printf.sprintf "%s_part%d" g.App_group.name k)
        ~servers
        ~data_mb_month:(g.App_group.data_mb_month *. share)
        ~users:(Array.map (fun u -> u *. share) g.App_group.users)
        ())

let ensure_fits ?max_fraction asis =
  let budget = size_budget ?max_fraction asis in
  if oversized ?max_fraction asis = [] then asis
  else begin
    (* first_part.(old) = index of the old group's first part in the new
       numbering, for remapping shared-risk lists. *)
    let m = Array.length asis.Asis.groups in
    let first_part = Array.make m 0 in
    let parts_of = Array.make m 1 in
    let next = ref 0 in
    Array.iteri
      (fun i (g : App_group.t) ->
        first_part.(i) <- !next;
        let parts =
          if g.App_group.servers > budget then
            (g.App_group.servers + budget - 1) / budget
          else 1
        in
        parts_of.(i) <- parts;
        next := !next + parts)
      asis.Asis.groups;
    let groups = ref [] and placement = ref [] in
    Array.iteri
      (fun i (g : App_group.t) ->
        let cur = asis.Asis.current_placement.(i) in
        let remap_avoid =
          List.concat_map
            (fun k ->
              if k >= 0 && k < m then
                List.init parts_of.(k) (fun p -> first_part.(k) + p)
              else [])
            g.App_group.colocate_avoid
        in
        if g.App_group.servers > budget then
          List.iter
            (fun part ->
              groups :=
                { part with App_group.colocate_avoid = remap_avoid } :: !groups;
              placement := cur :: !placement)
            (split_group budget g)
        else begin
          groups := { g with App_group.colocate_avoid = remap_avoid } :: !groups;
          placement := cur :: !placement
        end)
      asis.Asis.groups;
    {
      asis with
      Asis.groups = Array.of_list (List.rev !groups);
      current_placement = Array.of_list (List.rev !placement);
    }
  end
