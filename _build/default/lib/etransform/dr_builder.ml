type options = { omega : float option; dedicated_backups : bool }

let default_options = { omega = None; dedicated_backups = false }

type built = {
  model : Lp.Model.t;
  x : Lp.Model.var option array array;
  y : Lp.Model.var option array array;
  g : Lp.Model.var array;
  asis : Asis.t;
}

let build ?(options = default_options) asis =
  let open Lp in
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let model = Model.create ~name:(asis.Asis.name ^ "_dr") () in
  let mk prefix =
    Array.init m (fun i ->
        Array.init n (fun j ->
            if App_group.allowed asis.Asis.groups.(i) j then
              Some
                (Model.add_var model ~binary:true
                   (Printf.sprintf "%s_%d_%d" prefix i j))
            else None))
  in
  let x = mk "X" and y = mk "Y" in
  let g =
    Array.init n (fun b -> Model.add_var model (Printf.sprintf "G_%d" b))
  in
  let row_sum vars i =
    Model.Linexpr.sum
      (List.filter_map
         (fun j -> Option.map Model.Linexpr.var vars.(i).(j))
         (List.init n Fun.id))
  in
  for i = 0 to m - 1 do
    Model.add_eq model (Printf.sprintf "assign_%d" i) (row_sum x i) 1.0;
    Model.add_eq model (Printf.sprintf "backup_%d" i) (row_sum y i) 1.0;
    for j = 0 to n - 1 do
      match (x.(i).(j), y.(i).(j)) with
      | Some xv, Some yv ->
          (* Paper: X_ij + Y_ij < 2, i.e. primary and secondary differ. *)
          Model.add_le model
            (Printf.sprintf "distinct_%d_%d" i j)
            Model.Linexpr.(add (var xv) (var yv))
            1.0
      | _ -> ()
    done
  done;
  (* Backup pools.  Under sharing, G_b >= sum_c J_abc S_c per primary a;
     under dedicated backups the pool is simply the sum of backed-up
     servers, no J needed. *)
  if options.dedicated_backups then
    for b = 0 to n - 1 do
      let demand =
        Model.Linexpr.sum
          (List.filter_map
             (fun i ->
               Option.map
                 (Model.Linexpr.term
                    (float_of_int asis.Asis.groups.(i).App_group.servers))
                 y.(i).(b))
             (List.init m Fun.id))
      in
      Model.add_ge model
        (Printf.sprintf "pool_%d" b)
        (Model.Linexpr.sub (Model.Linexpr.var g.(b)) demand)
        0.0
    done
  else begin
    let j_var = Array.init m (fun _ -> Hashtbl.create 4) in
    for c = 0 to m - 1 do
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then
            match (x.(c).(a), y.(c).(b)) with
            | Some xv, Some yv ->
                let jv =
                  Model.add_var model ~hi:1.0 (Printf.sprintf "J_%d_%d_%d" a b c)
                in
                Hashtbl.replace j_var.(c) (a, b) jv;
                (* J_abc >= X_ca + Y_cb - 1 *)
                Model.add_ge model
                  (Printf.sprintf "link_%d_%d_%d" a b c)
                  Model.Linexpr.(
                    sub (var jv) (add (var xv) (var yv)))
                  (-1.0)
            | _ -> ()
        done
      done
    done;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b then begin
          let demand =
            Model.Linexpr.sum
              (List.filter_map
                 (fun c ->
                   Option.map
                     (Model.Linexpr.term
                        (float_of_int asis.Asis.groups.(c).App_group.servers))
                     (Hashtbl.find_opt j_var.(c) (a, b)))
                 (List.init m Fun.id))
          in
          Model.add_ge model
            (Printf.sprintf "pool_%d_%d" a b)
            (Model.Linexpr.sub (Model.Linexpr.var g.(b)) demand)
            0.0
        end
      done
    done
  end;
  (* Capacity shared between primaries and the backup pool; business-impact
     spread on primaries. *)
  for j = 0 to n - 1 do
    let dc = asis.Asis.targets.(j) in
    let load =
      Model.Linexpr.sum
        (List.filter_map
           (fun i ->
             Option.map
               (Model.Linexpr.term
                  (float_of_int asis.Asis.groups.(i).App_group.servers))
               x.(i).(j))
           (List.init m Fun.id))
    in
    Model.add_le model
      (Printf.sprintf "cap_%d" j)
      (Model.Linexpr.add load (Model.Linexpr.var g.(j)))
      (float_of_int dc.Data_center.capacity);
    match options.omega with
    | None -> ()
    | Some w ->
        let count =
          Model.Linexpr.sum
            (List.filter_map
               (fun i -> Option.map Model.Linexpr.var x.(i).(j))
               (List.init m Fun.id))
        in
        Model.add_le model
          (Printf.sprintf "impact_%d" j)
          count
          (w *. float_of_int m)
  done;
  (* Objective: assignment costs + backup purchase and hosting. *)
  let terms = ref [] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      match x.(i).(j) with
      | None -> ()
      | Some v ->
          terms :=
            Lp.Model.Linexpr.term
              (Cost_model.assign_cost asis ~group:i asis.Asis.targets.(j))
              v
            :: !terms
    done
  done;
  for b = 0 to n - 1 do
    let dc = asis.Asis.targets.(b) in
    let per_backup =
      asis.Asis.params.Asis.dr_server_cost
      +. Cost_model.power_labor_per_server asis dc
      +. Data_center.first_tier_space dc
    in
    terms := Lp.Model.Linexpr.term per_backup g.(b) :: !terms
  done;
  Lp.Model.set_objective model (Lp.Model.Linexpr.sum !terms);
  { model; x; y; g; asis }

let argmax_row vars solution i =
  let best = ref (-1) and best_v = ref neg_infinity in
  Array.iteri
    (fun j v ->
      match v with
      | None -> ()
      | Some var ->
          let value = solution.(var.Lp.Model.id) in
          if value > !best_v then begin
            best_v := value;
            best := j
          end)
    vars.(i);
  !best

let decode built solution =
  let m = Array.length built.x in
  let primary = Array.init m (argmax_row built.x solution) in
  let secondary =
    Array.init m (fun i ->
        let b = argmax_row built.y solution i in
        (* Guard against ties decoding onto the primary. *)
        if b = primary.(i) then begin
          let alt = ref (-1) and alt_v = ref neg_infinity in
          Array.iteri
            (fun j v ->
              match v with
              | Some var when j <> primary.(i) ->
                  let value = solution.(var.Lp.Model.id) in
                  if value > !alt_v then begin
                    alt_v := value;
                    alt := j
                  end
              | _ -> ())
            built.y.(i);
          if !alt >= 0 then !alt else (primary.(i) + 1) mod Array.length built.g
        end
        else b)
  in
  Placement.with_dr ~primary ~secondary ()
