type breakdown = {
  space : float;
  wan : float;
  power : float;
  labor : float;
  fixed : float;
  latency_penalty : float;
  backup_capex : float;
  backup_ops : float;
}

let total b =
  b.space +. b.wan +. b.power +. b.labor +. b.fixed +. b.latency_penalty
  +. b.backup_capex +. b.backup_ops

let operational b = total b -. b.latency_penalty

type summary = {
  cost : breakdown;
  violations : int;
  dcs_used : int;
  servers : int array;
  backups : float array;
}

(* Shared engine: cost the [assign]ment of groups over an arbitrary [estate]
   plus per-DC backup pools. *)
let cost_over asis ~estate ~assign ~backups =
  let n = Array.length estate in
  let p = asis.Asis.params in
  let servers = Array.make n 0 in
  Array.iteri
    (fun i j ->
      servers.(j) <- servers.(j) + asis.Asis.groups.(i).App_group.servers)
    assign;
  let space = ref 0.0 and power = ref 0.0 and labor = ref 0.0 in
  let fixed = ref 0.0 and backup_ops = ref 0.0 in
  for j = 0 to n - 1 do
    let dc = estate.(j) in
    let prim = float_of_int servers.(j) in
    let bk = backups.(j) in
    let all = prim +. bk in
    if all > 0.0 then begin
      let space_all = Data_center.space_cost dc all in
      let space_prim = Data_center.space_cost dc prim in
      let per_server =
        (p.Asis.server_power_kw *. p.Asis.hours_per_month
        *. dc.Data_center.rates.Data_center.power_per_kwh)
        +. (dc.Data_center.rates.Data_center.admin_monthly
           /. p.Asis.servers_per_admin)
      in
      space := !space +. space_prim;
      power :=
        !power
        +. (prim *. p.Asis.server_power_kw *. p.Asis.hours_per_month
           *. dc.Data_center.rates.Data_center.power_per_kwh);
      labor :=
        !labor
        +. (prim *. dc.Data_center.rates.Data_center.admin_monthly
           /. p.Asis.servers_per_admin);
      (* Backup servers ride the same discount curve; attribute the
         difference between hosting all servers and the primaries alone. *)
      backup_ops := !backup_ops +. (space_all -. space_prim) +. (bk *. per_server);
      fixed := !fixed +. dc.Data_center.rates.Data_center.fixed_monthly
    end
  done;
  let wan = ref 0.0 and penalty = ref 0.0 and violations = ref 0 in
  Array.iteri
    (fun i j ->
      let dc = estate.(j) in
      wan := !wan +. Cost_model.wan_cost asis ~group:i dc;
      let g = asis.Asis.groups.(i) in
      let lat =
        Geo.Latency_model.average ~weights:g.App_group.users
          dc.Data_center.user_latency_ms
      in
      penalty :=
        !penalty
        +. Latency_penalty.total g.App_group.latency ~avg_latency_ms:lat
             ~users:(App_group.total_users g);
      if Latency_penalty.violated g.App_group.latency ~avg_latency_ms:lat then
        incr violations)
    assign;
  let total_backups = Array.fold_left ( +. ) 0.0 backups in
  let cost =
    {
      space = !space;
      wan = !wan;
      power = !power;
      labor = !labor;
      fixed = !fixed;
      latency_penalty = !penalty;
      backup_capex = p.Asis.dr_server_cost *. total_backups;
      backup_ops = !backup_ops;
    }
  in
  let used = Array.make n false in
  Array.iter (fun j -> used.(j) <- true) assign;
  Array.iteri (fun j b -> if b > 0.0 then used.(j) <- true) backups;
  {
    cost;
    violations = !violations;
    dcs_used = Array.fold_left (fun a u -> if u then a + 1 else a) 0 used;
    servers;
    backups;
  }

let plan asis (p : Placement.t) =
  cost_over asis ~estate:asis.Asis.targets ~assign:p.Placement.primary
    ~backups:(Placement.backup_servers asis p)

let asis_state asis =
  cost_over asis ~estate:asis.Asis.current ~assign:asis.Asis.current_placement
    ~backups:(Array.make (Array.length asis.Asis.current) 0.0)

let asis_with_basic_dr asis =
  (* One dedicated backup site sized for the worst single-site failure,
     priced like the cheapest current DC. *)
  let n = Array.length asis.Asis.current in
  let per_dc = Array.make n 0 in
  Array.iteri
    (fun i j ->
      per_dc.(j) <- per_dc.(j) + asis.Asis.groups.(i).App_group.servers)
    asis.Asis.current_placement;
  let worst = Array.fold_left max 0 per_dc in
  let cheapest =
    Array.to_list asis.Asis.current
    |> List.sort (fun a b ->
           compare (Data_center.first_tier_space a) (Data_center.first_tier_space b))
    |> List.hd
  in
  let backup_site =
    (* Extend the discount curve so the site can absorb the whole pool. *)
    let segs = cheapest.Data_center.rates.Data_center.space_segments in
    let last_cost =
      List.fold_left (fun _ s -> s.Lp.Piecewise.unit_cost) 0.0 segs
    in
    let extra =
      { Lp.Piecewise.width = float_of_int (max worst 1); unit_cost = last_cost }
    in
    Data_center.v ~name:"backup-site"
      ~capacity:(max worst cheapest.Data_center.capacity)
      ~space_segments:(segs @ [ extra ])
      ~wan_per_mb:cheapest.Data_center.rates.Data_center.wan_per_mb
      ~power_per_kwh:cheapest.Data_center.rates.Data_center.power_per_kwh
      ~admin_monthly:cheapest.Data_center.rates.Data_center.admin_monthly
      ~user_latency_ms:cheapest.Data_center.user_latency_ms
      ~vpn_monthly:cheapest.Data_center.vpn_monthly ()
  in
  let estate = Array.append asis.Asis.current [| backup_site |] in
  let backups = Array.make (n + 1) 0.0 in
  backups.(n) <- float_of_int worst;
  cost_over asis ~estate ~assign:asis.Asis.current_placement ~backups

let pp_breakdown ppf b =
  Fmt.pf ppf
    "space %.3e, wan %.3e, power %.3e, labor %.3e, fixed %.3e, penalty %.3e, \
     backup capex %.3e, backup ops %.3e, total %.3e"
    b.space b.wan b.power b.labor b.fixed b.latency_penalty b.backup_capex
    b.backup_ops (total b)

let pp_summary ppf s =
  Fmt.pf ppf "total $%.3e (penalty $%.3e), %d violations, %d DCs used"
    (total s.cost) s.cost.latency_penalty s.violations s.dcs_used
