type artifacts = {
  outcome : Solver.outcome;
  lp_file : string option;
  solution_file : string option;
}

let run ?(builder = Lp_builder.default_options) ?(dr = false) ?workdir asis =
  let outcome =
    if dr then
      Dr_planner.plan
        ~options:
          {
            Dr_planner.default_options with
            Dr_planner.omega = builder.Lp_builder.omega;
            economies_of_scale = builder.Lp_builder.economies_of_scale;
          }
        asis
    else Solver.consolidate ~builder asis
  in
  match workdir with
  | None -> { outcome; lp_file = None; solution_file = None }
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let built =
        if dr then (Dr_builder.build asis).Dr_builder.model
        else (Lp_builder.build ~options:builder asis).Lp_builder.model
      in
      let lp_file = Filename.concat dir (asis.Asis.name ^ ".lp") in
      Lp.Lp_format.write_model_file lp_file built;
      let solution_file = Filename.concat dir (asis.Asis.name ^ ".sol") in
      let oc = open_out solution_file in
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "\\ to-be state for %s\n" asis.Asis.name;
      Format.fprintf ppf "status: %s\n"
        (Lp.Status.to_string outcome.Solver.milp_status);
      Format.fprintf ppf "total_monthly_cost: %.2f\n"
        (Evaluate.total outcome.Solver.summary.Evaluate.cost);
      Array.iteri
        (fun i j ->
          Format.fprintf ppf "%s -> %s\n"
            asis.Asis.groups.(i).App_group.name
            asis.Asis.targets.(j).Data_center.name)
        outcome.Solver.placement.Placement.primary;
      (match outcome.Solver.placement.Placement.secondary with
      | None -> ()
      | Some sec ->
          Array.iteri
            (fun i b ->
              Format.fprintf ppf "%s ~> %s (backup)\n"
                asis.Asis.groups.(i).App_group.name
                asis.Asis.targets.(b).Data_center.name)
            sec);
      Format.pp_print_flush ppf ();
      close_out oc;
      { outcome; lp_file = Some lp_file; solution_file = Some solution_file }
