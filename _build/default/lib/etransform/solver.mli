(** The eTransform planning engine: model construction, MILP solve, and
    exact-cost polishing, end to end.

    [consolidate] mirrors the paper's non-DR algorithm (§III); DR planning
    lives in {!Dr_planner}.  When the MILP budget runs out the engine falls
    back to its incumbent (or, failing that, the greedy plan) and repairs it
    with local search, so callers always receive a feasible plan together
    with solver diagnostics. *)

type outcome = {
  placement : Placement.t;
  summary : Evaluate.summary;
  milp_status : Lp.Status.t;
  milp_gap : float;          (** relative gap proven by the MILP *)
  nodes : int;
  lp_iterations : int;
  local_moves : int;         (** local-search improvements applied *)
}

(** MILP budgets tuned for consolidation instances. *)
val default_milp_options : Lp.Milp.options

val consolidate :
  ?builder:Lp_builder.options ->
  ?milp:Lp.Milp.options ->
  ?local_search:bool ->
  Asis.t -> outcome

(** [solve_to_placement] is [consolidate] stripped to the plan, for callers
    that do not need diagnostics. *)
val solve_to_placement : ?builder:Lp_builder.options -> Asis.t -> Placement.t
