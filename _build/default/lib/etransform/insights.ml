let capacity_shadow_prices ?(builder = Lp_builder.default_options) asis =
  let built = Lp_builder.build ~options:builder asis in
  let input = Lp.Simplex.of_model built.Lp_builder.model in
  let result = Lp.Simplex.solve input in
  let n = Asis.num_targets asis in
  let prices = Array.make n 0.0 in
  if result.Lp.Simplex.status = Lp.Status.Optimal then begin
    (* Capacity rows are named cap_<j>; locate them by name because option
       rows (discount tiers, opening charges) interleave with them. *)
    Array.iteri
      (fun row (c : Lp.Model.constr) ->
        match String.index_opt c.Lp.Model.cname '_' with
        | Some i when String.sub c.Lp.Model.cname 0 i = "cap" -> (
            match
              int_of_string_opt
                (String.sub c.Lp.Model.cname (i + 1)
                   (String.length c.Lp.Model.cname - i - 1))
            with
            | Some j when j >= 0 && j < n ->
                prices.(j) <- result.Lp.Simplex.duals.(row)
            | _ -> ())
        | _ -> ())
      (Lp.Model.constrs built.Lp_builder.model)
  end;
  Array.mapi (fun j y -> (j, y)) prices

let most_constrained ?builder asis =
  capacity_shadow_prices ?builder asis
  |> Array.to_list
  |> List.filter (fun (_, y) -> Float.abs y > 1e-7)
  |> List.sort (fun (_, a) (_, b) -> compare a b)
