(** The admin interface for iterative modification (paper Fig. 5).

    After reviewing an initial plan, administrators add constraints — pin a
    group to a site, keep it away from one, retire a site entirely, or cap
    the blast radius — and re-solve.  Adjustments compose: keep folding them
    into the builder options and re-running. *)

type adjustment =
  | Pin of int * int       (** group must go to this target *)
  | Forbid of int * int    (** group must avoid this target *)
  | Close_dc of int        (** no group may use this target *)
  | Spread of float        (** business impact: at most this fraction of
                               groups per site *)

val pp_adjustment : adjustment Fmt.t

(** [apply asis base adjs] folds adjustments into builder options. *)
val apply : Asis.t -> Lp_builder.options -> adjustment list -> Lp_builder.options

(** [replan asis adjs] re-solves from the default options. *)
val replan :
  ?base:Lp_builder.options -> ?milp:Lp.Milp.options -> Asis.t ->
  adjustment list -> Solver.outcome
