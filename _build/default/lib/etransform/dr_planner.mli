(** Scalable integrated consolidation + DR planning.

    The faithful joint MILP of {!Dr_builder} carries O(M N^2) linearization
    variables, which outgrows a dense-tableau simplex quickly.  This planner
    decomposes the problem:

    + stage 1 places primaries with the §III model, a business-impact
      spread, and a configurable capacity reservation for future backup
      pools;
    + stage 2 optimally chooses secondaries given the primaries — with
      primaries fixed, shared pools linearize exactly as
      G_b >= sum over groups with primary a of S_i Y_ib, an O(M N) MILP;
    + a joint local search then polishes both decisions against the exact
      evaluator.

    If stage 2 is infeasible the reservation is raised and both stages
    rerun.  On small instances the result is checked against the joint
    model in the test suite. *)

type options = {
  omega : float option;          (** business-impact spread for primaries *)
  economies_of_scale : bool;     (** stage-1 space on the discount curve *)
  reserve : float;               (** initial capacity fraction kept for pools *)
  milp : Lp.Milp.options;
  local_search : bool;
  secondary_candidates : int option;
      (** keep only this many cheapest pool sites per group in stage 2 *)
}

val default_options : options

val plan : ?options:options -> Asis.t -> Solver.outcome

(** [joint_plan asis] solves the faithful §IV MILP directly (small
    instances only). *)
val joint_plan :
  ?omega:float -> ?milp:Lp.Milp.options -> Asis.t -> Solver.outcome
