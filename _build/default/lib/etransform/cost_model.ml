let avg_latency_ms asis ~group dc =
  let g = asis.Asis.groups.(group) in
  Geo.Latency_model.average ~weights:g.App_group.users
    dc.Data_center.user_latency_ms

let wan_cost asis ~group dc =
  let g = asis.Asis.groups.(group) in
  let p = asis.Asis.params in
  if p.Asis.use_vpn then begin
    let total_users = App_group.total_users g in
    if total_users <= 0.0 then 0.0
    else begin
      (* Dedicated links sized by each location's share of the traffic. *)
      let acc = ref 0.0 in
      Array.iteri
        (fun r c_ir ->
          let links =
            c_ir *. g.App_group.data_mb_month
            /. (p.Asis.vpn_link_capacity_mb *. total_users)
          in
          acc := !acc +. (links *. dc.Data_center.vpn_monthly.(r)))
        g.App_group.users;
      !acc
    end
  end
  else g.App_group.data_mb_month *. dc.Data_center.rates.Data_center.wan_per_mb

let power_labor_per_server asis dc =
  let p = asis.Asis.params in
  (p.Asis.server_power_kw *. p.Asis.hours_per_month
  *. dc.Data_center.rates.Data_center.power_per_kwh)
  +. (dc.Data_center.rates.Data_center.admin_monthly /. p.Asis.servers_per_admin)

let latency_penalty asis ~group dc =
  let g = asis.Asis.groups.(group) in
  Latency_penalty.total g.App_group.latency
    ~avg_latency_ms:(avg_latency_ms asis ~group dc)
    ~users:(App_group.total_users g)

let assign_cost ?(include_first_tier_space = true) asis ~group dc =
  let g = asis.Asis.groups.(group) in
  let servers = float_of_int g.App_group.servers in
  let space =
    if include_first_tier_space then Data_center.first_tier_space dc else 0.0
  in
  (servers *. (space +. power_labor_per_server asis dc))
  +. wan_cost asis ~group dc
  +. latency_penalty asis ~group dc
