(** The state-of-the-art manual heuristic the paper compares against
    (§VI-B): pick a small fixed number of target sites a priori (by cheapest
    real estate, a common rule of thumb), then move each application group
    to the chosen site "closest" to its current data center.

    Proximity is measured between latency profiles (a current and a target
    DC that see all user locations alike are near each other), which mirrors
    how practitioners match regions without a global optimizer.

    The DR variant (§VI-C) mirrors each chosen site with a dedicated backup
    site; a group's backup follows its primary's mirror. *)

val plan : ?num_dcs:int -> Asis.t -> Placement.t

val plan_dr : ?num_dcs:int -> Asis.t -> Placement.t
