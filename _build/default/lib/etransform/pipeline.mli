(** The end-to-end eTransform pipeline of the paper's Fig. 5: as-is state ->
    transformation & consolidation module -> LP file -> optimization engine
    -> solution file -> output generation -> to-be state. *)

type artifacts = {
  outcome : Solver.outcome;
  lp_file : string option;        (** path of the exported model, if any *)
  solution_file : string option;  (** path of the exported solution *)
}

(** [run asis] plans consolidation (or integrated DR when [dr] is set) and,
    when [workdir] is given, materializes the LP file and solution file
    exactly as the paper's architecture does. *)
val run :
  ?builder:Lp_builder.options ->
  ?dr:bool ->
  ?workdir:string ->
  Asis.t -> artifacts
