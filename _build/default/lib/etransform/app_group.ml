type t = {
  name : string;
  servers : int;
  data_mb_month : float;
  users : float array;
  latency : Latency_penalty.t;
  allowed_dcs : int array option;
  colocate_avoid : int list;
}

let v ?(latency = Latency_penalty.none) ?allowed_dcs ?(colocate_avoid = [])
    ~name ~servers ~data_mb_month ~users () =
  if servers <= 0 then invalid_arg "App_group.v: servers must be positive";
  if data_mb_month < 0.0 then invalid_arg "App_group.v: negative traffic";
  Array.iter
    (fun u -> if u < 0.0 then invalid_arg "App_group.v: negative user count")
    users;
  { name; servers; data_mb_month; users; latency; allowed_dcs; colocate_avoid }

let total_users t = Array.fold_left ( +. ) 0.0 t.users

let allowed t j =
  match t.allowed_dcs with
  | None -> true
  | Some a -> Array.exists (fun k -> k = j) a

let pp ppf t =
  Fmt.pf ppf "%s: %d servers, %.0f users, %.0f Mb/mo (%a)" t.name t.servers
    (total_users t) t.data_mb_month Latency_penalty.pp t.latency
