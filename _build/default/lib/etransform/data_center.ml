type rates = {
  space_segments : Lp.Piecewise.segment list;
  wan_per_mb : float;
  power_per_kwh : float;
  admin_monthly : float;
  fixed_monthly : float;
}

type t = {
  name : string;
  capacity : int;
  rates : rates;
  user_latency_ms : float array;
  vpn_monthly : float array;
}

let flat_space ~capacity ~per_server =
  [ { Lp.Piecewise.width = float_of_int (max capacity 1); unit_cost = per_server } ]

let v ?(fixed_monthly = 0.0) ?vpn_monthly ~name ~capacity ~space_segments
    ~wan_per_mb ~power_per_kwh ~admin_monthly ~user_latency_ms () =
  if capacity <= 0 then invalid_arg "Data_center.v: capacity must be positive";
  if space_segments = [] then invalid_arg "Data_center.v: no space segments";
  if Lp.Piecewise.total_width space_segments < float_of_int capacity -. 1e-9
  then invalid_arg "Data_center.v: space segments do not cover capacity";
  let vpn_monthly =
    match vpn_monthly with
    | Some v -> v
    | None -> Array.make (Array.length user_latency_ms) 0.0
  in
  if Array.length vpn_monthly <> Array.length user_latency_ms then
    invalid_arg "Data_center.v: vpn_monthly length mismatch";
  {
    name;
    capacity;
    rates =
      { space_segments; wan_per_mb; power_per_kwh; admin_monthly; fixed_monthly };
    user_latency_ms;
    vpn_monthly;
  }

let space_cost t n = Lp.Piecewise.cost_at t.rates.space_segments n

let first_tier_space t =
  match t.rates.space_segments with
  | s :: _ -> s.Lp.Piecewise.unit_cost
  | [] -> 0.0

let pp ppf t =
  Fmt.pf ppf "%s: cap %d, space $%.0f/srv, wan $%.4f/Mb, power $%.3f/kWh"
    t.name t.capacity (first_tier_space t) t.rates.wan_per_mb
    t.rates.power_per_kwh
