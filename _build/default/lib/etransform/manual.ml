let profile_distance (a : Data_center.t) (b : Data_center.t) =
  let la = a.Data_center.user_latency_ms and lb = b.Data_center.user_latency_ms in
  let acc = ref 0.0 in
  Array.iteri (fun r x -> acc := !acc +. ((x -. lb.(r)) ** 2.0)) la;
  sqrt !acc

(* Cheapest-real-estate site selection; grows the candidate set until the
   chosen sites can hold the whole estate. *)
let choose_sites ?(num_dcs = 2) asis =
  let n = Asis.num_targets asis in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      compare
        (Data_center.first_tier_space asis.Asis.targets.(a))
        (Data_center.first_tier_space asis.Asis.targets.(b)))
    order;
  let total = Asis.total_servers asis in
  let rec take k =
    if k > n then Array.to_list order
    else begin
      let chosen = Array.sub order 0 k in
      let cap =
        Array.fold_left
          (fun a j -> a + asis.Asis.targets.(j).Data_center.capacity)
          0 chosen
      in
      if cap >= total then Array.to_list chosen else take (k + 1)
    end
  in
  take (min num_dcs n)

let assign_to_sites asis sites =
  let m = Asis.num_groups asis in
  let load = Array.make (Asis.num_targets asis) 0.0 in
  let primary = Array.make m (-1) in
  for i = 0 to m - 1 do
    let g = asis.Asis.groups.(i) in
    let s = float_of_int g.App_group.servers in
    let cur = asis.Asis.current.(asis.Asis.current_placement.(i)) in
    let by_proximity =
      List.sort
        (fun a b ->
          compare
            (profile_distance cur asis.Asis.targets.(a))
            (profile_distance cur asis.Asis.targets.(b)))
        sites
    in
    let feasible j =
      App_group.allowed g j
      && load.(j) +. s
         <= float_of_int asis.Asis.targets.(j).Data_center.capacity
    in
    let chosen =
      match List.find_opt feasible by_proximity with
      | Some j -> Some j
      | None ->
          (* Overflow: fall back to any target with room, nearest first. *)
          List.init (Asis.num_targets asis) Fun.id
          |> List.sort (fun a b ->
                 compare
                   (profile_distance cur asis.Asis.targets.(a))
                   (profile_distance cur asis.Asis.targets.(b)))
          |> List.find_opt feasible
    in
    match chosen with
    | Some j ->
        primary.(i) <- j;
        load.(j) <- load.(j) +. s
    | None ->
        failwith
          (Printf.sprintf "Manual.plan: no feasible DC for group %s"
             g.App_group.name)
  done;
  primary

let plan ?num_dcs asis =
  Placement.non_dr (assign_to_sites asis (choose_sites ?num_dcs asis))

let plan_dr ?(num_dcs = 2) asis =
  let sites = choose_sites ~num_dcs asis in
  let primary = assign_to_sites asis sites in
  (* Mirror each chosen site with the cheapest unused site. *)
  let n = Asis.num_targets asis in
  let used = Array.make n false in
  List.iter (fun j -> used.(j) <- true) sites;
  Array.iter (fun j -> used.(j) <- true) primary;
  let spare =
    List.init n Fun.id
    |> List.filter (fun j -> not used.(j))
    |> List.sort (fun a b ->
           compare
             (Data_center.first_tier_space asis.Asis.targets.(a))
             (Data_center.first_tier_space asis.Asis.targets.(b)))
  in
  let mirror = Hashtbl.create 8 in
  let assigned_primaries =
    Array.to_list primary |> List.sort_uniq compare
  in
  let rec pair sites spare =
    match (sites, spare) with
    | [], _ -> ()
    | a :: rest, b :: spare_rest ->
        Hashtbl.replace mirror a b;
        pair rest spare_rest
    | a :: rest, [] ->
        (* Ran out of spare sites: mirror onto the least loaded other
           chosen site. *)
        let alt =
          List.filter (fun j -> j <> a) assigned_primaries
          |> fun l -> match l with [] -> (a + 1) mod n | x :: _ -> x
        in
        Hashtbl.replace mirror a alt;
        pair rest []
  in
  pair assigned_primaries spare;
  let secondary =
    Array.map
      (fun a ->
        match Hashtbl.find_opt mirror a with
        | Some b -> b
        | None -> (a + 1) mod n)
      primary
  in
  Placement.with_dr ~primary ~secondary ()
