(** The paper's joint consolidation + disaster-recovery MILP (§IV-B).

    On top of the §III model it adds, per application group, a secondary
    site choice Y_ij with X_ij + Y_ij <= 1, the linearization
    J_abc >= X_ca + Y_cb - 1 (J may stay continuous: the objective presses
    it down, the constraint up), backup-pool sizes
    G_b >= sum_c J_abc S_c for every primary a, shared capacity
    sum_i S_i X_ij + G_j <= O_j, the business-impact constraint
    sum_i X_ij <= omega M, and backup costs zeta G_b plus the backup pools'
    space/power/labor.

    The J variables make the model O(M N^2); use this faithful form on
    small/medium instances (it anchors the tests) and {!Dr_planner} at
    scale. *)

type options = {
  omega : float option;
  dedicated_backups : bool;
      (** plan for concurrent failures: G_b is the sum, not the max *)
}

val default_options : options

type built = {
  model : Lp.Model.t;
  x : Lp.Model.var option array array;
  y : Lp.Model.var option array array;
  g : Lp.Model.var array;
  asis : Asis.t;
}

val build : ?options:options -> Asis.t -> built

val decode : built -> float array -> Placement.t
