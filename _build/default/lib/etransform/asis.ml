type params = {
  server_power_kw : float;
  servers_per_admin : float;
  hours_per_month : float;
  vpn_link_capacity_mb : float;
  use_vpn : bool;
  dr_server_cost : float;
}

let default_params =
  {
    server_power_kw = 0.35;      (* paper: 300-400 W per server *)
    servers_per_admin = 130.0;   (* paper: each admin handles 130 servers *)
    hours_per_month = 730.0;
    vpn_link_capacity_mb = 1_000_000.0;
    use_vpn = false;
    dr_server_cost = 1000.0;     (* paper: $1000 per DR server *)
  }

type t = {
  name : string;
  groups : App_group.t array;
  targets : Data_center.t array;
  user_locations : string array;
  current : Data_center.t array;
  current_placement : int array;
  params : params;
}

let v ?(params = default_params) ~name ~groups ~targets ~user_locations
    ~current ~current_placement () =
  {
    name;
    groups;
    targets;
    user_locations;
    current;
    current_placement;
    params;
  }

let num_groups t = Array.length t.groups
let num_targets t = Array.length t.targets
let num_user_locations t = Array.length t.user_locations

let total_servers t =
  Array.fold_left (fun a (g : App_group.t) -> a + g.App_group.servers) 0 t.groups

let total_target_capacity t =
  Array.fold_left (fun a (d : Data_center.t) -> a + d.Data_center.capacity) 0
    t.targets

let validate t =
  let problems = ref [] in
  let bad fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let r = num_user_locations t in
  if Array.length t.groups = 0 then bad "no application groups";
  if Array.length t.targets = 0 then bad "no target data centers";
  Array.iter
    (fun (g : App_group.t) ->
      if Array.length g.App_group.users <> r then
        bad "group %s has %d user locations, expected %d" g.App_group.name
          (Array.length g.App_group.users) r)
    t.groups;
  Array.iter
    (fun (d : Data_center.t) ->
      if Array.length d.Data_center.user_latency_ms <> r then
        bad "target %s has %d latency entries, expected %d" d.Data_center.name
          (Array.length d.Data_center.user_latency_ms) r)
    (Array.append t.targets t.current);
  if Array.length t.current_placement <> Array.length t.groups then
    bad "current_placement length %d, expected %d"
      (Array.length t.current_placement)
      (Array.length t.groups);
  Array.iteri
    (fun i c ->
      if c < 0 || c >= Array.length t.current then
        bad "group %d currently placed in unknown DC %d" i c)
    t.current_placement;
  if total_target_capacity t < total_servers t then
    bad "target capacity %d cannot host all %d servers"
      (total_target_capacity t) (total_servers t);
  Array.iteri
    (fun i (g : App_group.t) ->
      match g.App_group.allowed_dcs with
      | Some [||] -> bad "group %d has an empty allowed-DC list" i
      | Some a ->
          Array.iter
            (fun j ->
              if j < 0 || j >= Array.length t.targets then
                bad "group %d allows unknown target %d" i j)
            a
      | None -> ())
    t.groups;
  if t.params.servers_per_admin <= 0.0 then bad "servers_per_admin must be positive";
  if t.params.vpn_link_capacity_mb <= 0.0 then bad "vpn_link_capacity_mb must be positive";
  List.rev !problems

let pp_summary ppf t =
  Fmt.pf ppf
    "%s: %d app groups, %d servers, %d current DCs, %d target DCs, %d user \
     locations"
    t.name (num_groups t) (total_servers t)
    (Array.length t.current)
    (num_targets t) (num_user_locations t)
