type t = {
  primary : int array;
  secondary : int array option;
  dedicated_backups : bool;
}

let non_dr primary = { primary; secondary = None; dedicated_backups = false }

let with_dr ?(dedicated_backups = false) ~primary ~secondary () =
  if Array.length primary <> Array.length secondary then
    invalid_arg "Placement.with_dr: length mismatch";
  { primary; secondary = Some secondary; dedicated_backups }

let servers_per_dc asis t =
  let counts = Array.make (Asis.num_targets asis) 0 in
  Array.iteri
    (fun i j ->
      counts.(j) <- counts.(j) + asis.Asis.groups.(i).App_group.servers)
    t.primary;
  counts

let backup_servers asis t =
  let n = Asis.num_targets asis in
  match t.secondary with
  | None -> Array.make n 0.0
  | Some sec ->
      if t.dedicated_backups then begin
        let g = Array.make n 0.0 in
        Array.iteri
          (fun i b ->
            g.(b) <-
              g.(b) +. float_of_int asis.Asis.groups.(i).App_group.servers)
          sec;
        g
      end
      else begin
        (* pair.(a).(b): servers with primary a and secondary b; the pool at
           b must cover the worst single failing primary site. *)
        let pair = Array.make_matrix n n 0.0 in
        Array.iteri
          (fun i b ->
            let a = t.primary.(i) in
            pair.(a).(b) <-
              pair.(a).(b) +. float_of_int asis.Asis.groups.(i).App_group.servers)
          sec;
        Array.init n (fun b ->
            let worst = ref 0.0 in
            for a = 0 to n - 1 do
              if pair.(a).(b) > !worst then worst := pair.(a).(b)
            done;
            !worst)
      end

let dcs_used asis t =
  let n = Asis.num_targets asis in
  let used = Array.make n false in
  Array.iter (fun j -> used.(j) <- true) t.primary;
  Array.iteri
    (fun b g -> if g > 0.0 then used.(b) <- true)
    (backup_servers asis t);
  Array.fold_left (fun a u -> if u then a + 1 else a) 0 used

let validate asis t =
  let problems = ref [] in
  let bad fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  if Array.length t.primary <> m then
    bad "plan covers %d groups, expected %d" (Array.length t.primary) m;
  let indices_ok = ref (Array.length t.primary = m) in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= n then begin
        indices_ok := false;
        bad "group %d placed in unknown target %d" i j
      end
      else if not (App_group.allowed asis.Asis.groups.(i) j) then
        bad "group %d placed in disallowed target %d" i j)
    t.primary;
  (* Shared-risk separation. *)
  Array.iteri
    (fun i (g : App_group.t) ->
      List.iter
        (fun other ->
          if
            other >= 0 && other < m && other <> i
            && t.primary.(other) = t.primary.(i)
          then bad "groups %d and %d share DC %d but must be separated" i other
            t.primary.(i))
        g.App_group.colocate_avoid)
    asis.Asis.groups;
  (match t.secondary with
  | None -> ()
  | Some sec ->
      if Array.length sec <> m then begin
        indices_ok := false;
        bad "secondary covers %d groups, expected %d" (Array.length sec) m
      end;
      Array.iteri
        (fun i b ->
          if b < 0 || b >= n then begin
            indices_ok := false;
            bad "group %d has unknown secondary %d" i b
          end
          else if i < Array.length t.primary && b = t.primary.(i) then
            bad "group %d has identical primary and secondary %d" i b)
        sec);
  (* Loads are only well-defined once every index is in range. *)
  if !indices_ok then begin
    let primaries = servers_per_dc asis t in
    let backups = backup_servers asis t in
    Array.iteri
      (fun j (dc : Data_center.t) ->
        let load = float_of_int primaries.(j) +. backups.(j) in
        if load > float_of_int dc.Data_center.capacity +. 1e-9 then
          bad "target %s over capacity: %.0f > %d" dc.Data_center.name load
            dc.Data_center.capacity)
      asis.Asis.targets
  end;
  List.rev !problems

let pp asis ppf t =
  let counts = servers_per_dc asis t in
  let backups = backup_servers asis t in
  Array.iteri
    (fun j (dc : Data_center.t) ->
      if counts.(j) > 0 || backups.(j) > 0.0 then
        Fmt.pf ppf "%s: %d servers%s@." dc.Data_center.name counts.(j)
          (if backups.(j) > 0.0 then
             Printf.sprintf " + %.0f backups" backups.(j)
           else ""))
    asis.Asis.targets
