(** Per-(group, data center) cost components of the paper's objective:

    X_ij * ( S_i (Q_j + alpha E_j + T_j / beta) + D_i W_j + L_ij )

    Space (Q_j) is kept separate because with economies of scale it is a
    concave function of the DC's total server count, handled at the DC
    level; everything else here is linear in the assignment. *)

(** [avg_latency_ms asis ~group dc] is the user-weighted average RTT the
    group's users see from [dc]. *)
val avg_latency_ms : Asis.t -> group:int -> Data_center.t -> float

(** [wan_cost asis ~group dc] per month.  With [use_vpn] set, the dedicated
    link model applies: the group needs
    [ceil-free (C_ir D_i) / (gamma * sum_r C_ir)] links to location [r]
    at [F_jr] each; otherwise the shared model [D_i * W_j] applies. *)
val wan_cost : Asis.t -> group:int -> Data_center.t -> float

(** [power_labor_per_server asis dc] is the monthly non-space cost of one
    server at [dc]: alpha * hours * E_j + T_j / beta. *)
val power_labor_per_server : Asis.t -> Data_center.t -> float

(** [latency_penalty asis ~group dc] is L_ij: the monthly dollar penalty for
    the group's users if placed at [dc]. *)
val latency_penalty : Asis.t -> group:int -> Data_center.t -> float

(** [assign_cost ?include_first_tier_space asis ~group dc] is the linear
    placement coefficient c_ij.  When [include_first_tier_space] (default
    true) the space term uses the first volume tier's unit price — exact
    under flat pricing, an upper bound under volume discounts. *)
val assign_cost :
  ?include_first_tier_space:bool -> Asis.t -> group:int -> Data_center.t ->
  float
