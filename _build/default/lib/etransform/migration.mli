(** Transition scheduling from the as-is estate to a to-be plan.

    A consolidation plan says where everything should end up; enterprises
    execute it in waves with a bounded move rate.  This scheduler orders the
    moves to retire current sites as early as possible — a site's space,
    fixed and labor bills stop the moment it empties — and reports the cost
    timeline across waves, which is what transformation programs budget
    against. *)

type move = {
  group : int;        (** group index in the as-is state *)
  from_current : int; (** current DC the group leaves *)
  to_target : int;    (** target DC it lands in (plan primary) *)
}

type wave = { moves : move list; servers_moved : int }

type schedule = {
  waves : wave list;
  (** Total monthly cost after wave k completes; element 0 is the as-is
      cost, the last element is the to-be cost.  Penalties included. *)
  cost_timeline : float array;
}

(** [plan asis placement] builds the wave schedule.  [servers_per_wave]
    bounds each wave's move volume (default 100).  Groups of a site are
    kept in consecutive waves; sites are drained smallest-first so rent
    stops early. *)
val plan : ?servers_per_wave:int -> Asis.t -> Placement.t -> schedule

(** [validate asis placement schedule] checks that every group moves
    exactly once, to its planned target, within the wave budget.  Empty
    list = well-formed. *)
val validate :
  ?servers_per_wave:int -> Asis.t -> Placement.t -> schedule -> string list

val pp : Asis.t -> schedule Fmt.t
