(** Application groups: the unit of placement (paper §II).

    An application group bundles applications that interact closely or share
    data; the associativity constraint keeps all of a group's servers in one
    data center.  [users.(r)] is the paper's C_ir — the number of users of
    this group at user location [r]. *)

type t = {
  name : string;
  servers : int;                (** S_i: physical servers the group runs on *)
  data_mb_month : float;        (** D_i: monthly traffic with its users, Mb *)
  users : float array;          (** C_ir per user location *)
  latency : Latency_penalty.t;
  allowed_dcs : int array option;
      (** geography/legal constraint: if set, placement is restricted to
          these target indices *)
  colocate_avoid : int list;
      (** shared-risk: groups (by index) that must not share a DC *)
}

val v :
  ?latency:Latency_penalty.t ->
  ?allowed_dcs:int array ->
  ?colocate_avoid:int list ->
  name:string -> servers:int -> data_mb_month:float -> users:float array ->
  unit -> t

val total_users : t -> float

(** [allowed t j] is placement admissibility at target [j]. *)
val allowed : t -> int -> bool

val pp : t Fmt.t
