(** Exact monthly-cost evaluation of states and plans.

    This is the ground truth the LP approximates: space follows the full
    volume-discount curve, penalties use the exact step functions, and DR
    backup pools are costed at their hosting sites.  Baselines, local
    search, and all experiment harnesses are scored with this module. *)

type breakdown = {
  space : float;
  wan : float;
  power : float;
  labor : float;
  fixed : float;            (** site opening charges *)
  latency_penalty : float;
  backup_capex : float;     (** zeta * total backup servers *)
  backup_ops : float;       (** space/power/labor of the backup pools *)
}

val total : breakdown -> float

(** Operational cost excluding latency penalties (the paper plots the two
    separately in Figs. 4 and 6). *)
val operational : breakdown -> float

type summary = {
  cost : breakdown;
  violations : int;          (** groups whose latency penalty fires *)
  dcs_used : int;
  servers : int array;       (** primary servers per DC of the estate used *)
  backups : float array;     (** backup servers per DC *)
}

(** [plan asis p] evaluates a to-be plan over the target estate. *)
val plan : Asis.t -> Placement.t -> summary

(** [asis_state asis] evaluates the current estate as-is. *)
val asis_state : Asis.t -> summary

(** [asis_with_basic_dr asis] adds the paper's strawman DR to the as-is
    state: one dedicated backup site (priced like the cheapest current DC)
    big enough for the worst single-site failure. *)
val asis_with_basic_dr : Asis.t -> summary

val pp_breakdown : breakdown Fmt.t
val pp_summary : summary Fmt.t
