(** Oversized-group preprocessing.

    The associativity constraint keeps a group in one data center, so a
    group larger than every target is unplaceable.  The paper defers to
    application-partitioning techniques (its ref. [3], Hajjat et al.,
    "Cloudward bound") to split such a group first and then feeds the parts
    to eTransform.  This module performs that split mechanically: an
    oversized group becomes several parts, each within the size budget,
    with users and traffic divided proportionally (the parts still talk to
    the same user population). *)

(** [oversized ?max_fraction asis] lists groups whose server count exceeds
    [max_fraction] (default 0.9) of the largest target capacity. *)
val oversized : ?max_fraction:float -> Asis.t -> int list

(** [ensure_fits ?max_fraction asis] returns an equivalent as-is state in
    which every group fits; groups that already fit are untouched and keep
    their relative order.  Shared-risk lists are remapped onto all parts. *)
val ensure_fits : ?max_fraction:float -> Asis.t -> Asis.t
