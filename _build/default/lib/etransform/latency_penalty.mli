(** Latency penalty functions.

    The paper models each application group's latency requirement as a step
    function: a dollar penalty per user charged when the user-averaged
    latency falls in a given range (e.g. "$100 per user if average latency
    exceeds 10 ms"). *)

type t

(** No latency sensitivity: always zero penalty. *)
val none : t

(** [step ~threshold_ms ~penalty_per_user] charges [penalty_per_user] once
    average latency strictly exceeds [threshold_ms]. *)
val step : threshold_ms:float -> penalty_per_user:float -> t

(** [bands pairs] builds a general step function from
    [(threshold_ms, penalty_per_user)] pairs: the penalty of the highest
    threshold strictly below the observed latency applies.  Thresholds are
    sorted internally. *)
val bands : (float * float) list -> t

(** [per_user t ~avg_latency_ms] is the dollar penalty per user. *)
val per_user : t -> avg_latency_ms:float -> float

(** [total t ~avg_latency_ms ~users] multiplies by the user count. *)
val total : t -> avg_latency_ms:float -> users:float -> float

(** [violated t ~avg_latency_ms] is true when a non-zero penalty applies —
    the paper's "latency violation" counter. *)
val violated : t -> avg_latency_ms:float -> bool

(** [is_sensitive t] is false only for {!none}-like functions. *)
val is_sensitive : t -> bool

(** Smallest threshold with a positive penalty, if any. *)
val first_threshold : t -> float option

val pp : t Fmt.t
