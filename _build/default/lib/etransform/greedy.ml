let order_by_size asis =
  let m = Asis.num_groups asis in
  let idx = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      compare asis.Asis.groups.(b).App_group.servers
        asis.Asis.groups.(a).App_group.servers)
    idx;
  idx

(* Marginal cost of adding [group] to [j] when [load] servers already
   landed there. *)
let marginal_cost asis ~group ~j ~load =
  let dc = asis.Asis.targets.(j) in
  let s = float_of_int asis.Asis.groups.(group).App_group.servers in
  let space =
    Data_center.space_cost dc (load +. s) -. Data_center.space_cost dc load
  in
  space
  +. (s *. Cost_model.power_labor_per_server asis dc)
  +. Cost_model.wan_cost asis ~group dc
  +. Cost_model.latency_penalty asis ~group dc
  +. (if load = 0.0 then dc.Data_center.rates.Data_center.fixed_monthly else 0.0)

let place_primaries asis =
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let load = Array.make n 0.0 in
  let primary = Array.make m (-1) in
  Array.iter
    (fun i ->
      let g = asis.Asis.groups.(i) in
      let s = float_of_int g.App_group.servers in
      let best = ref (-1) and best_c = ref infinity in
      for j = 0 to n - 1 do
        let dc = asis.Asis.targets.(j) in
        if
          App_group.allowed g j
          && load.(j) +. s <= float_of_int dc.Data_center.capacity
        then begin
          let c = marginal_cost asis ~group:i ~j ~load:load.(j) in
          if c < !best_c then begin
            best_c := c;
            best := j
          end
        end
      done;
      if !best < 0 then
        failwith
          (Printf.sprintf "Greedy.plan: no feasible DC for group %s"
             g.App_group.name);
      primary.(i) <- !best;
      load.(!best) <- load.(!best) +. s)
    (order_by_size asis);
  (primary, load)

let plan asis =
  let primary, _ = place_primaries asis in
  Placement.non_dr primary

let plan_dr asis =
  let n = Asis.num_targets asis in
  let primary, load = place_primaries asis in
  let p = asis.Asis.params in
  (* pair.(a).(b): backup servers already promised at b for primaries of a;
     pools.(b) = max_a pair.(a).(b). *)
  let pair = Array.make_matrix n n 0.0 in
  let pools = Array.make n 0.0 in
  let secondary = Array.make (Array.length primary) (-1) in
  Array.iter
    (fun i ->
      let g = asis.Asis.groups.(i) in
      let s = float_of_int g.App_group.servers in
      let a = primary.(i) in
      let best = ref (-1) and best_c = ref infinity in
      for b = 0 to n - 1 do
        if b <> a then begin
          let dc = asis.Asis.targets.(b) in
          let new_pool = Float.max pools.(b) (pair.(a).(b) +. s) in
          let delta = new_pool -. pools.(b) in
          if
            load.(b) +. new_pool <= float_of_int dc.Data_center.capacity
          then begin
            let per_server =
              Cost_model.power_labor_per_server asis dc
              +. Data_center.first_tier_space dc
            in
            let c = delta *. (p.Asis.dr_server_cost +. per_server) in
            if c < !best_c then begin
              best_c := c;
              best := b
            end
          end
        end
      done;
      if !best < 0 then
        failwith
          (Printf.sprintf "Greedy.plan_dr: no feasible backup DC for group %s"
             g.App_group.name);
      let b = !best in
      pair.(a).(b) <- pair.(a).(b) +. s;
      if pair.(a).(b) > pools.(b) then pools.(b) <- pair.(a).(b);
      secondary.(i) <- b)
    (order_by_size asis);
  Placement.with_dr ~primary ~secondary ()
