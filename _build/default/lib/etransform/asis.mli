(** The "as-is" state of the enterprise (paper Table I): application groups,
    the current estate, the candidate target data centers, and the global
    sizing parameters. *)

type params = {
  server_power_kw : float;       (** α: average draw per server, kW *)
  servers_per_admin : float;     (** β: servers one administrator handles *)
  hours_per_month : float;       (** power billing period, default 730 *)
  vpn_link_capacity_mb : float;  (** γ: monthly Mb one dedicated link carries *)
  use_vpn : bool;                (** dedicated VPN links instead of per-Mb WAN *)
  dr_server_cost : float;        (** ζ: price of one backup server *)
}

val default_params : params

type t = {
  name : string;
  groups : App_group.t array;            (** M application groups *)
  targets : Data_center.t array;         (** N candidate target locations *)
  user_locations : string array;         (** R user location labels *)
  current : Data_center.t array;         (** the existing estate *)
  current_placement : int array;         (** group -> current DC index *)
  params : params;
}

val v :
  ?params:params ->
  name:string ->
  groups:App_group.t array ->
  targets:Data_center.t array ->
  user_locations:string array ->
  current:Data_center.t array ->
  current_placement:int array ->
  unit -> t

val num_groups : t -> int
val num_targets : t -> int
val num_user_locations : t -> int
val total_servers : t -> int
val total_target_capacity : t -> int

(** Structural consistency: array lengths, capacity sanity, placement
    indices in range.  Empty list means well-formed. *)
val validate : t -> string list

(** Summary line in the style of the paper's Table II. *)
val pp_summary : t Fmt.t
