type t = (float * float) list
(* (threshold_ms, penalty_per_user) sorted by threshold; the band of the
   largest threshold strictly below the observed latency applies. *)

let none = []

let bands pairs =
  List.iter
    (fun (t, p) ->
      if t < 0.0 || p < 0.0 then
        invalid_arg "Latency_penalty.bands: negative threshold or penalty")
    pairs;
  List.sort (fun (a, _) (b, _) -> compare a b) pairs

let step ~threshold_ms ~penalty_per_user =
  bands [ (threshold_ms, penalty_per_user) ]

let per_user t ~avg_latency_ms =
  List.fold_left
    (fun acc (thr, p) -> if avg_latency_ms > thr then p else acc)
    0.0 t

let total t ~avg_latency_ms ~users = users *. per_user t ~avg_latency_ms
let violated t ~avg_latency_ms = per_user t ~avg_latency_ms > 0.0
let is_sensitive t = List.exists (fun (_, p) -> p > 0.0) t

let first_threshold t =
  List.find_map (fun (thr, p) -> if p > 0.0 then Some thr else None) t

let pp ppf t =
  if t = [] then Fmt.string ppf "latency-insensitive"
  else
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "ms->$") float float)) ppf t
