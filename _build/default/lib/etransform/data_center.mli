(** Target (and current) data center locations with their price books
    (paper Table I: Q_j, W_j, E_j, T_j, O_j, plus VPN link prices F_jr). *)

type rates = {
  space_segments : Lp.Piecewise.segment list;
      (** $/server-month by volume tier (Q_j with economies of scale);
          a single segment means flat pricing *)
  wan_per_mb : float;          (** W_j: $/Mb transferred over shared WAN *)
  power_per_kwh : float;       (** E_j: $/kWh *)
  admin_monthly : float;       (** T_j: monthly fully-loaded admin cost *)
  fixed_monthly : float;       (** site opening charge if any servers land *)
}

type t = {
  name : string;
  capacity : int;              (** O_j, in servers *)
  rates : rates;
  user_latency_ms : float array;   (** L(j, r): RTT to each user location *)
  vpn_monthly : float array;       (** F_jr: leasing one VPN link to r *)
}

val v :
  ?fixed_monthly:float ->
  ?vpn_monthly:float array ->
  name:string -> capacity:int -> space_segments:Lp.Piecewise.segment list ->
  wan_per_mb:float -> power_per_kwh:float -> admin_monthly:float ->
  user_latency_ms:float array -> unit -> t

(** Flat space pricing helper: one segment covering [capacity]. *)
val flat_space : capacity:int -> per_server:float -> Lp.Piecewise.segment list

(** [space_cost t n] is the monthly space bill for hosting [n] servers,
    following the volume-discount curve. *)
val space_cost : t -> float -> float

(** [marginal_space t n] is the first-tier unit price, used when building
    the simple (non-economies-of-scale) LP objective. *)
val first_tier_space : t -> float

val pp : t Fmt.t
