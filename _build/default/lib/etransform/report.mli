(** Plain-text tables in the style of the paper's figures, shared by the
    benchmark harness and the CLI. *)

(** [table ~header rows] renders an aligned ASCII table. *)
val table : header:string list -> string list list -> string

(** [money x] formats dollars compactly ("$1.23e8" style for big numbers). *)
val money : float -> string

(** [percent ~relative_to x] formats the reduction of [x] versus a baseline
    as the paper does ("-43%" means 43% cheaper). *)
val percent : relative_to:float -> float -> string

(** [comparison_rows ~asis entries] builds the Fig. 4/6-style rows: one per
    algorithm with operational cost, latency penalty, total, reduction vs
    the as-is entry, and violation count. *)
val comparison_rows :
  asis_total:float ->
  (string * Evaluate.summary) list ->
  string list list

val comparison_header : string list
