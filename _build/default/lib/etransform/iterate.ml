type adjustment =
  | Pin of int * int
  | Forbid of int * int
  | Close_dc of int
  | Spread of float

let pp_adjustment ppf = function
  | Pin (i, j) -> Fmt.pf ppf "pin group %d to target %d" i j
  | Forbid (i, j) -> Fmt.pf ppf "forbid group %d at target %d" i j
  | Close_dc j -> Fmt.pf ppf "close target %d" j
  | Spread w -> Fmt.pf ppf "at most %.0f%% of groups per site" (100.0 *. w)

let apply asis base adjs =
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let check_group i =
    if i < 0 || i >= m then invalid_arg (Printf.sprintf "Iterate: group %d" i)
  and check_dc j =
    if j < 0 || j >= n then invalid_arg (Printf.sprintf "Iterate: target %d" j)
  in
  List.fold_left
    (fun (opts : Lp_builder.options) adj ->
      match adj with
      | Pin (i, j) ->
          check_group i;
          check_dc j;
          { opts with Lp_builder.pins = (i, j) :: opts.Lp_builder.pins }
      | Forbid (i, j) ->
          check_group i;
          check_dc j;
          { opts with Lp_builder.forbids = (i, j) :: opts.Lp_builder.forbids }
      | Close_dc j ->
          check_dc j;
          let all = List.init m (fun i -> (i, j)) in
          { opts with Lp_builder.forbids = all @ opts.Lp_builder.forbids }
      | Spread w ->
          if w <= 0.0 || w > 1.0 then
            invalid_arg "Iterate: spread fraction must be in (0, 1]";
          { opts with Lp_builder.omega = Some w })
    base adjs

let replan ?(base = Lp_builder.default_options) ?milp asis adjs =
  Solver.consolidate ~builder:(apply asis base adjs) ?milp asis
