type move = { group : int; from_current : int; to_target : int }
type wave = { moves : move list; servers_moved : int }
type schedule = { waves : wave list; cost_timeline : float array }

(* Cost of a hybrid state: some groups still in the current estate, the
   rest at their targets.  Build one combined estate and reuse the exact
   evaluator through a combined assignment. *)
let hybrid_cost asis (placement : Placement.t) moved =
  let n_current = Array.length asis.Asis.current in
  let estate = Array.append asis.Asis.current asis.Asis.targets in
  let assign =
    Array.mapi
      (fun i cur ->
        if moved.(i) then n_current + placement.Placement.primary.(i) else cur)
      asis.Asis.current_placement
  in
  (* Reuse Evaluate's engine by faking an as-is whose current estate is the
     combined one. *)
  let combined =
    { asis with Asis.current = estate; current_placement = assign }
  in
  Evaluate.total (Evaluate.asis_state combined).Evaluate.cost

let plan ?(servers_per_wave = 100) asis (placement : Placement.t) =
  let m = Asis.num_groups asis in
  (* Drain current sites smallest-first: cheapest path to shutting rent
     off.  Within a site, biggest groups first (they block retirement). *)
  let n_current = Array.length asis.Asis.current in
  let site_load = Array.make n_current 0 in
  Array.iteri
    (fun i c ->
      site_load.(c) <- site_load.(c) + asis.Asis.groups.(i).App_group.servers)
    asis.Asis.current_placement;
  let site_order = Array.init n_current Fun.id in
  Array.sort (fun a b -> compare site_load.(a) site_load.(b)) site_order;
  let pending = Queue.create () in
  Array.iter
    (fun site ->
      let members =
        List.init m Fun.id
        |> List.filter (fun i -> asis.Asis.current_placement.(i) = site)
        |> List.sort (fun a b ->
               compare asis.Asis.groups.(b).App_group.servers
                 asis.Asis.groups.(a).App_group.servers)
      in
      List.iter (fun i -> Queue.add i pending) members)
    site_order;
  (* Cut the move stream into waves within the server budget; a group
     larger than the budget gets a wave of its own. *)
  let waves = ref [] in
  let current_moves = ref [] and current_servers = ref 0 in
  let flush () =
    if !current_moves <> [] then begin
      waves :=
        { moves = List.rev !current_moves; servers_moved = !current_servers }
        :: !waves;
      current_moves := [];
      current_servers := 0
    end
  in
  Queue.iter
    (fun i ->
      let s = asis.Asis.groups.(i).App_group.servers in
      if !current_servers > 0 && !current_servers + s > servers_per_wave then
        flush ();
      current_moves :=
        {
          group = i;
          from_current = asis.Asis.current_placement.(i);
          to_target = placement.Placement.primary.(i);
        }
        :: !current_moves;
      current_servers := !current_servers + s)
    pending;
  flush ();
  let waves = List.rev !waves in
  (* Cost after each completed wave. *)
  let moved = Array.make m false in
  let timeline = ref [ hybrid_cost asis placement moved ] in
  List.iter
    (fun w ->
      List.iter (fun mv -> moved.(mv.group) <- true) w.moves;
      timeline := hybrid_cost asis placement moved :: !timeline)
    waves;
  { waves; cost_timeline = Array.of_list (List.rev !timeline) }

let validate ?(servers_per_wave = 100) asis (placement : Placement.t) schedule =
  let problems = ref [] in
  let bad fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let m = Asis.num_groups asis in
  let seen = Array.make m 0 in
  List.iteri
    (fun k w ->
      let servers =
        List.fold_left
          (fun a mv -> a + asis.Asis.groups.(mv.group).App_group.servers)
          0 w.moves
      in
      if servers <> w.servers_moved then
        bad "wave %d reports %d servers but moves %d" k w.servers_moved servers;
      (* Oversized groups are allowed a dedicated wave. *)
      if servers > servers_per_wave && List.length w.moves > 1 then
        bad "wave %d moves %d servers, budget %d" k servers servers_per_wave;
      List.iter
        (fun mv ->
          seen.(mv.group) <- seen.(mv.group) + 1;
          if mv.to_target <> placement.Placement.primary.(mv.group) then
            bad "group %d routed to %d, plan says %d" mv.group mv.to_target
              placement.Placement.primary.(mv.group);
          if mv.from_current <> asis.Asis.current_placement.(mv.group) then
            bad "group %d leaves %d but lives in %d" mv.group mv.from_current
              asis.Asis.current_placement.(mv.group))
        w.moves)
    schedule.waves;
  Array.iteri
    (fun i c -> if c <> 1 then bad "group %d moved %d times" i c)
    seen;
  if Array.length schedule.cost_timeline <> List.length schedule.waves + 1 then
    bad "timeline has %d entries for %d waves"
      (Array.length schedule.cost_timeline)
      (List.length schedule.waves);
  List.rev !problems

let pp asis ppf schedule =
  List.iteri
    (fun k w ->
      Fmt.pf ppf "wave %d: %d groups, %d servers, cost after $%.0f@." (k + 1)
        (List.length w.moves) w.servers_moved
        schedule.cost_timeline.(k + 1))
    schedule.waves;
  ignore asis
