(** What-if analysis for administrators, built on LP duals.

    Solving the consolidation model's LP relaxation prices every
    constraint: the multiplier on a capacity row is the monthly saving one
    extra server slot at that site would buy — exactly the question asked
    when negotiating colocation contracts. *)

(** [capacity_shadow_prices ?builder asis] returns, per target DC index,
    the (non-positive, minimization) dual of its capacity row in the LP
    relaxation; more negative = more valuable extra capacity.  DCs whose
    capacity is slack price at zero. *)
val capacity_shadow_prices :
  ?builder:Lp_builder.options -> Asis.t -> (int * float) array

(** [most_constrained ?builder asis] orders target DCs by the value of
    relaxing their capacity, most valuable first, dropping zero-priced
    sites. *)
val most_constrained :
  ?builder:Lp_builder.options -> Asis.t -> (int * float) list
