let plan_cost asis p = Evaluate.total (Evaluate.plan asis p).Evaluate.cost

let feasible asis p = Placement.validate asis p = []

let improve ?(max_rounds = 6) ?(swaps = true) ?(may_place = fun _ _ -> true)
    ?omega asis (plan : Placement.t) =
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let omega_ok (p : Placement.t) =
    match omega with
    | None -> true
    | Some w ->
        let counts = Array.make n 0 in
        Array.iter (fun j -> counts.(j) <- counts.(j) + 1) p.Placement.primary;
        Array.for_all
          (fun c -> float_of_int c <= (w *. float_of_int m) +. 1e-9)
          counts
  in
  let current = ref plan in
  let cost = ref (plan_cost asis plan) in
  let moves = ref 0 in
  let try_plan p' =
    if feasible asis p' && omega_ok p' then begin
      let c' = plan_cost asis p' in
      if c' < !cost -. 1e-6 then begin
        current := p';
        cost := c';
        incr moves;
        true
      end
      else false
    end
    else false
  in
  let round () =
    let improved = ref false in
    (* Single-group reassignment of the primary site. *)
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let p = !current in
        if p.Placement.primary.(i) <> j
           && App_group.allowed asis.Asis.groups.(i) j
           && may_place i j
        then begin
          let primary = Array.copy p.Placement.primary in
          primary.(i) <- j;
          (* Keep the secondary distinct from the new primary. *)
          let secondary =
            match p.Placement.secondary with
            | None -> None
            | Some sec ->
                let sec = Array.copy sec in
                if sec.(i) = j then sec.(i) <- p.Placement.primary.(i);
                Some sec
          in
          let p' = { p with Placement.primary; secondary } in
          if try_plan p' then improved := true
        end
      done
    done;
    (* Secondary-site reassignment for DR plans. *)
    (match !current.Placement.secondary with
    | None -> ()
    | Some _ ->
        for i = 0 to m - 1 do
          for j = 0 to n - 1 do
            let p = !current in
            match p.Placement.secondary with
            | Some sec when sec.(i) <> j && p.Placement.primary.(i) <> j ->
                let sec' = Array.copy sec in
                sec'.(i) <- j;
                let p' = { p with Placement.secondary = Some sec' } in
                if try_plan p' then improved := true
            | _ -> ()
          done
        done);
    (* Pairwise swaps unstick capacity-tight instances. *)
    if swaps then
      for i = 0 to m - 1 do
        for k = i + 1 to m - 1 do
          let p = !current in
          let ji = p.Placement.primary.(i) and jk = p.Placement.primary.(k) in
          if ji <> jk
             && App_group.allowed asis.Asis.groups.(i) jk
             && App_group.allowed asis.Asis.groups.(k) ji
             && may_place i jk && may_place k ji
          then begin
            let primary = Array.copy p.Placement.primary in
            primary.(i) <- jk;
            primary.(k) <- ji;
            let p' = { p with Placement.primary } in
            if try_plan p' then improved := true
          end
        done
      done;
    !improved
  in
  let rec loop r = if r > 0 && round () then loop (r - 1) in
  loop max_rounds;
  (!current, !moves)
