let table ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun a r -> max a (List.length r)) 0 all
  in
  let width = Array.make ncols 0 in
  List.iter
    (List.iteri (fun c cell ->
         if c < ncols then width.(c) <- max width.(c) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row r =
    List.iteri
      (fun c cell ->
        Buffer.add_string buf cell;
        if c < ncols - 1 then
          Buffer.add_string buf (String.make (width.(c) - String.length cell + 2) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row
    (List.mapi (fun c _ -> String.make width.(c) '-') header);
  List.iter emit_row rows;
  Buffer.contents buf

let money x =
  if Float.abs x >= 1e7 then Printf.sprintf "$%.3e" x
  else if Float.abs x >= 1000.0 then Printf.sprintf "$%.0f" x
  else Printf.sprintf "$%.2f" x

let percent ~relative_to x =
  if relative_to = 0.0 then "n/a"
  else begin
    let delta = (x -. relative_to) /. relative_to *. 100.0 in
    Printf.sprintf "%+.0f%%" delta
  end

let comparison_header =
  [ "algorithm"; "op-cost"; "penalty"; "total"; "vs-as-is"; "violations"; "DCs" ]

let comparison_rows ~asis_total entries =
  List.map
    (fun (name, (s : Evaluate.summary)) ->
      let total = Evaluate.total s.Evaluate.cost in
      [
        name;
        money (Evaluate.operational s.Evaluate.cost);
        money s.Evaluate.cost.Evaluate.latency_penalty;
        money total;
        percent ~relative_to:asis_total total;
        string_of_int s.Evaluate.violations;
        string_of_int s.Evaluate.dcs_used;
      ])
    entries
