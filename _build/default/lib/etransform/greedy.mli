(** The paper's greedy baseline (§VI-B): visit application groups in
    decreasing server-count order and put each in the data center that is
    cheapest *right now*, accounting for marginal space (on the discount
    curve), power, labor, WAN and latency penalty.

    The DR variant (§VI-C) then assigns each group's backup to the cheapest
    distinct site, charging for any new backup servers the choice forces. *)

val plan : Asis.t -> Placement.t

val plan_dr : Asis.t -> Placement.t
