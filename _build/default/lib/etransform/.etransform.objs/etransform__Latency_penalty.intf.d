lib/etransform/latency_penalty.mli: Fmt
