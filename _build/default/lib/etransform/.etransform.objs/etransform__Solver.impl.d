lib/etransform/solver.ml: App_group Array Asis Cost_model Data_center Evaluate Float Fun Greedy Hashtbl List Local_search Logs Lp Lp_builder Placement String
