lib/etransform/iterate.ml: Asis Fmt List Lp_builder Printf Solver
