lib/etransform/migration.ml: App_group Array Asis Evaluate Fmt Fun List Placement Queue
