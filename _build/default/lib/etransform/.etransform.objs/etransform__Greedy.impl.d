lib/etransform/greedy.ml: App_group Array Asis Cost_model Data_center Float Fun Placement Printf
