lib/etransform/manual.ml: App_group Array Asis Data_center Fun Hashtbl List Placement Printf
