lib/etransform/lp_builder.ml: App_group Array Asis Cost_model Data_center Fun Hashtbl List Lp Model Option Piecewise Placement Printf
