lib/etransform/cost_model.ml: App_group Array Asis Data_center Geo Latency_penalty
