lib/etransform/dr_planner.ml: App_group Array Asis Cost_model Data_center Dr_builder Evaluate Float Fun List Local_search Logs Lp Lp_builder Model Option Placement Printf Solver
