lib/etransform/migration.mli: Asis Fmt Placement
