lib/etransform/evaluate.ml: App_group Array Asis Cost_model Data_center Fmt Geo Latency_penalty List Lp Placement
