lib/etransform/greedy.mli: Asis Placement
