lib/etransform/solver.mli: Asis Evaluate Lp Lp_builder Placement
