lib/etransform/iterate.mli: Asis Fmt Lp Lp_builder Solver
