lib/etransform/report.mli: Evaluate
