lib/etransform/asis.mli: App_group Data_center Fmt
