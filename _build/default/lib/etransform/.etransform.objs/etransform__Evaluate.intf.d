lib/etransform/evaluate.mli: Asis Fmt Placement
