lib/etransform/placement.ml: App_group Array Asis Data_center Fmt List Printf
