lib/etransform/dr_builder.mli: Asis Lp Placement
