lib/etransform/split.ml: App_group Array Asis Data_center List Printf
