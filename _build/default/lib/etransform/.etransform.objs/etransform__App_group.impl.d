lib/etransform/app_group.ml: Array Fmt Latency_penalty
