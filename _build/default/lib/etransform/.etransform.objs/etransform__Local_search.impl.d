lib/etransform/local_search.ml: App_group Array Asis Evaluate Placement
