lib/etransform/placement.mli: Asis Fmt
