lib/etransform/manual.mli: Asis Placement
