lib/etransform/data_center.ml: Array Fmt Lp
