lib/etransform/app_group.mli: Fmt Latency_penalty
