lib/etransform/dr_planner.mli: Asis Lp Solver
