lib/etransform/data_center.mli: Fmt Lp
