lib/etransform/latency_penalty.ml: Fmt List
