lib/etransform/asis.ml: App_group Array Data_center Fmt List
