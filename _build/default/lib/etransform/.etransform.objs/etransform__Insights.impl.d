lib/etransform/insights.ml: Array Asis Float List Lp Lp_builder String
