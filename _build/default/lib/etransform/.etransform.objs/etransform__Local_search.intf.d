lib/etransform/local_search.mli: Asis Placement
