lib/etransform/report.ml: Array Buffer Evaluate Float List Printf String
