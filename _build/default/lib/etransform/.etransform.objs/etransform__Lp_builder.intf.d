lib/etransform/lp_builder.mli: Asis Lp Placement
