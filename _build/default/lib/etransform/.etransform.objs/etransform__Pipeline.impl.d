lib/etransform/pipeline.ml: App_group Array Asis Data_center Dr_builder Dr_planner Evaluate Filename Format Lp Lp_builder Placement Solver Sys
