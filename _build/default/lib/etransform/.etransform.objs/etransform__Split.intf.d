lib/etransform/split.mli: Asis
