lib/etransform/pipeline.mli: Asis Lp_builder Solver
