lib/etransform/cost_model.mli: Asis Data_center
