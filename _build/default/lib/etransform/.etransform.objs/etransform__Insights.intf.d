lib/etransform/insights.mli: Asis Lp_builder
