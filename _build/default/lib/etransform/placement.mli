(** "To-be" plans: where each application group lands, and — for DR plans —
    each group's secondary site and the backup-server pools. *)

type t = {
  primary : int array;            (** group -> target DC index *)
  secondary : int array option;   (** group -> secondary DC (DR plans) *)
  dedicated_backups : bool;
      (** true = one backup server set per group (multi-failure planning);
          false = the paper's default single-failure sharing *)
}

val non_dr : int array -> t
val with_dr : ?dedicated_backups:bool -> primary:int array -> secondary:int array -> unit -> t

(** [servers_per_dc asis t] counts primary servers landing on each target. *)
val servers_per_dc : Asis.t -> t -> int array

(** [backup_servers asis t] is G_b per target: under sharing, the max over
    primary sites [a] of the servers whose primary is [a] and secondary is
    [b] (only one site fails at a time); under dedicated backups, the sum. *)
val backup_servers : Asis.t -> t -> float array

(** [dcs_used asis t] counts targets hosting at least one primary or backup
    server. *)
val dcs_used : Asis.t -> t -> int

(** Feasibility: indices in range, allowed-DC and shared-risk constraints,
    secondary distinct from primary, and capacity covering primaries plus
    backups.  Empty list = feasible. *)
val validate : Asis.t -> t -> string list

val pp : Asis.t -> t Fmt.t
