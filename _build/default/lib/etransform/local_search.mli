(** Plan polishing by single-group reassignments and pairwise swaps, scored
    with the exact evaluator.

    The MILP objective linearizes the volume-discount curve; a short local
    search against {!Evaluate} recovers most of the gap, and it also repairs
    plans produced under node/time budgets. *)

(** [improve asis plan] hill-climbs until a fixed point or [max_rounds];
    returns the improved plan and the number of accepted moves.  Moves that
    would violate capacity, allowed-DC, shared-risk or secondary-distinct
    constraints are never proposed.  [may_place group dc] adds external
    admissibility (pins/forbids from the iterative interface); [omega]
    enforces the business-impact spread on primaries. *)
val improve :
  ?max_rounds:int -> ?swaps:bool -> ?may_place:(int -> int -> bool) ->
  ?omega:float -> Asis.t -> Placement.t -> Placement.t * int
