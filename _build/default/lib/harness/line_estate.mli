(** The synthetic "line" estate of the paper's parameter studies
    (§VI-D/E/F): ten data-center locations 0..9 with latency and space cost
    increasing with the location index, all other prices equal, and users
    only near locations 0 and 9. *)

type config = {
  n_dcs : int;                  (** locations on the line (paper: 10) *)
  n_groups : int;
  servers_per_group : int;
  capacity : int;               (** per DC *)
  base_space : float;           (** space $/server at location 0 *)
  space_step : float;           (** increment per location *)
  base_latency_ms : float;
  ms_per_hop : float;
  latency_exponent : float;  (** convexity of latency in line distance *)
  users_per_group : float;
  frac_at_0 : float;            (** share of each group's users at location 0;
                                    the rest sit at location 9 *)
  latency_penalty : Etransform.Latency_penalty.t;
  data_mb_month : float;
  use_vpn : bool;
  vpn_base : float;       (** monthly price of the shortest dedicated link *)
  vpn_per_ms : float;     (** price increment per ms of line latency *)
}

val default : config

(** [banded_penalty p] is the paper-style range penalty used in §VI-D:
    [p] per user beyond 10 ms, rising by [p] per band at 40, 80 and 120 ms,
    so stronger penalties pull placements closer to users. *)
val banded_penalty : float -> Etransform.Latency_penalty.t

val make : config -> Etransform.Asis.t

(** Weighted mean latency experienced by all users under a placement. *)
val mean_user_latency : Etransform.Asis.t -> Etransform.Placement.t -> float
