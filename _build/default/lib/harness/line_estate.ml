open Etransform

type config = {
  n_dcs : int;
  n_groups : int;
  servers_per_group : int;
  capacity : int;
  base_space : float;
  space_step : float;
  base_latency_ms : float;
  ms_per_hop : float;
  latency_exponent : float;
  users_per_group : float;
  frac_at_0 : float;
  latency_penalty : Latency_penalty.t;
  data_mb_month : float;
  use_vpn : bool;
  vpn_base : float;
  vpn_per_ms : float;
}

let banded_penalty p =
  if p <= 0.0 then Latency_penalty.none
  else
    Latency_penalty.bands
      [ (10.0, p); (40.0, 2.0 *. p); (80.0, 3.0 *. p); (120.0, 4.0 *. p) ]

let default =
  {
    n_dcs = 10;
    n_groups = 40;
    servers_per_group = 4;
    capacity = 1000;
    base_space = 80.0;
    space_step = 25.0;
    base_latency_ms = 2.0;
    ms_per_hop = 2.0;
    latency_exponent = 2.0;
    users_per_group = 50.0;
    frac_at_0 = 0.5;
    latency_penalty = Latency_penalty.none;
    data_mb_month = 50_000.0;
    use_vpn = false;
    vpn_base = 100.0;
    vpn_per_ms = 30.0;
  }

let make cfg =
  let lat =
    Geo.Topology.line ~exponent:cfg.latency_exponent ~n:cfg.n_dcs
      ~base_ms:cfg.base_latency_ms ~ms_per_hop:cfg.ms_per_hop
      ~user_positions:[| 0; cfg.n_dcs - 1 |] ()
  in
  let targets =
    Array.init cfg.n_dcs (fun j ->
        let space = cfg.base_space +. (cfg.space_step *. float_of_int j) in
        (* Dedicated-VPN studies price links by line distance. *)
        let vpn =
          Array.map (fun l -> cfg.vpn_base +. (cfg.vpn_per_ms *. l)) lat.(j)
        in
        Data_center.v
          ~name:(Printf.sprintf "location_%d" j)
          ~capacity:cfg.capacity
          ~space_segments:
            (Data_center.flat_space ~capacity:cfg.capacity ~per_server:space)
          ~wan_per_mb:1e-4 ~power_per_kwh:0.09 ~admin_monthly:6500.0
          ~user_latency_ms:lat.(j) ~vpn_monthly:vpn ())
  in
  let groups =
    Array.init cfg.n_groups (fun i ->
        let at0 = cfg.users_per_group *. cfg.frac_at_0 in
        App_group.v ~latency:cfg.latency_penalty
          ~name:(Printf.sprintf "line_grp_%02d" i)
          ~servers:cfg.servers_per_group ~data_mb_month:cfg.data_mb_month
          ~users:[| at0; cfg.users_per_group -. at0 |]
          ())
  in
  (* A nominal current estate: everything in one expensive legacy site. *)
  let current =
    [|
      Data_center.v ~name:"legacy" ~capacity:(cfg.n_groups * cfg.servers_per_group)
        ~space_segments:
          (Data_center.flat_space
             ~capacity:(cfg.n_groups * cfg.servers_per_group)
             ~per_server:(cfg.base_space *. 2.0))
        ~wan_per_mb:2e-4 ~power_per_kwh:0.12 ~admin_monthly:8000.0
        ~user_latency_ms:[| 30.0; 30.0 |] ()
    |]
  in
  let params = { Asis.default_params with Asis.use_vpn = cfg.use_vpn } in
  Asis.v ~params ~name:"line"
    ~groups ~targets
    ~user_locations:[| "loc0"; "loc9" |]
    ~current
    ~current_placement:(Array.make cfg.n_groups 0)
    ()

let mean_user_latency asis (p : Placement.t) =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i j ->
      let g = asis.Asis.groups.(i) in
      let users = App_group.total_users g in
      let lat =
        Geo.Latency_model.average ~weights:g.App_group.users
          asis.Asis.targets.(j).Data_center.user_latency_ms
      in
      num := !num +. (users *. lat);
      den := !den +. users)
    p.Placement.primary;
  if !den = 0.0 then 0.0 else !num /. !den
