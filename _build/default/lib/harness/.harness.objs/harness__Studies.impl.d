lib/harness/studies.ml: App_group Array Asis Datasets Dr_planner Etransform Evaluate Float Fun Greedy Latency_penalty Line_estate List Lp Lp_builder Manual Placement Printf Report Solver String Sys
