lib/harness/line_estate.ml: App_group Array Asis Data_center Etransform Geo Latency_penalty Placement Printf
