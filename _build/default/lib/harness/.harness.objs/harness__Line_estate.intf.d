lib/harness/line_estate.mli: Etransform
