lib/harness/studies.mli: Etransform
